"""Smoke tier: every example script must run to completion.

Each ``examples/*.py`` is executed as a subprocess exactly the way the
README tells a reader to run it (``PYTHONPATH=src python examples/...``),
in a temporary working directory so scripts that write output files never
dirty the repo. The only assertion is exit code 0 — examples are living
documentation, and a crashing example is a broken doc.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.examples

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )


def test_every_example_is_collected():
    assert len(EXAMPLES) >= 10  # the suite must notice a new script vanishing
