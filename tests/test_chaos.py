"""Chaos tier: the durable-orchestration contract under hostile conditions.

Every test here injects a failure the engine claims to survive — a
parent killed at an arbitrary journal prefix, a worker SIGSTOPped
mid-shard, ``/dev/shm`` refusing allocations, a manifest on a full disk
— and asserts the contract end to end: resume produces *identical*
detections, source grouping, and ledger totals; a hung worker costs one
bounded timeout, not the survey; degraded modes finish with the
downgrade ledgered. Stub-shard scenarios use the injectors in
:mod:`repro.survey.chaos`; the kill-point matrices also run the real
(small) pipeline so serialization fidelity is covered, not just
orchestration.
"""

from __future__ import annotations

import glob
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FaseConfig, MicroOp, run_survey
from repro.survey import (
    AdaptivePlanner,
    SHM_FALLBACK,
    SurveyManifest,
    plan_shards,
)
from repro.survey.chaos import (
    VICTIM_MACHINE,
    count_attempts,
    count_records,
    hang_worker_always_shard,
    hang_worker_once_shard,
    kill_worker_once_shard,
    shm_exhausted,
    torn_manifest_tail,
    truncate_manifest,
    well_behaved_shard,
)
from repro.survey.report import SHARD_STALLED
from repro.telemetry import Recorder, Telemetry

pytestmark = pytest.mark.chaos

#: Small but real: 2000-bin grid with a populated low band.
SMALL = FaseConfig(
    span_low=0.0, span_high=1e6, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
    name="chaos test",
)
MACHINES = ("corei7_desktop", "turionx2_laptop")
ONE_PAIR = ((MicroOp.LDM, MicroOp.LDL1),)
REAL_PLAN = dict(machines=MACHINES, pairs=ONE_PAIR, config=SMALL, seed=3)


def _scratch_config(base):
    """A tiny config whose ``name`` smuggles the scratch dir to stubs."""
    return FaseConfig(
        span_low=0.0, span_high=1e5, fres=50.0, falt1=43.3e3, f_delta=1e3, name=str(base)
    )


def _stub_plan(base):
    return dict(machines=MACHINES, pairs=ONE_PAIR, config=_scratch_config(base))


def _victim_id(plan):
    return next(
        spec.shard_id for spec in plan_shards(**plan) if spec.machine == VICTIM_MACHINE
    )


def carrier_map(report):
    return {
        name: sorted(
            round(det.frequency, 3)
            for activity in fase.activities.values()
            for det in activity.detections
        )
        for name, fase in report.machines.items()
    }


def source_map(report):
    return {
        name: [source.describe() for source in fase.sources]
        for name, fase in report.machines.items()
    }


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


# ----------------------------------------------------------------------
# Kill at any point: the manifest prefix matrix, real pipeline.


class TestKillPointMatrix:
    def test_every_prefix_resumes_to_identical_report(self, tmp_path):
        """Truncating the journal to any record prefix — with or without
        a torn tail welded on — and resuming reproduces the uninterrupted
        survey: same detections, same source grouping, same ledger."""
        golden = tmp_path / "golden"
        baseline = run_survey(**REAL_PLAN, manifest_dir=golden)
        assert baseline.n_completed == 2
        assert any(carrier_map(baseline).values())  # fixture is non-trivial
        total = count_records(golden)
        assert total >= 2

        for keep in range(total):
            for tear in (False, True):
                work = tmp_path / f"kill-{keep}-{'torn' if tear else 'clean'}"
                shutil.copytree(golden, work)
                truncate_manifest(work, keep)
                if tear:
                    torn_manifest_tail(work)
                resumed = run_survey(**REAL_PLAN, manifest_dir=work)
                assert resumed.n_completed == baseline.n_completed, (keep, tear)
                assert carrier_map(resumed) == carrier_map(baseline), (keep, tear)
                assert source_map(resumed) == source_map(baseline), (keep, tear)
                assert resumed.ledger.to_text() == baseline.ledger.to_text(), (keep, tear)

    def test_worker_death_history_survives_the_kill(self, tmp_path):
        """A resume must replay ledgered failures from before the kill,
        not just the shard results: the final report still narrates the
        worker death the first run survived."""
        plan = _stub_plan(tmp_path)
        manifest_dir = tmp_path / "manifest"
        first = run_survey(
            **plan,
            shard_fn=kill_worker_once_shard,
            workers=2,
            manifest_dir=manifest_dir,
            max_shard_retries=2,
        )
        assert first.n_completed == 2
        assert first.ledger.failures  # the death was ledgered (pool-break kind)
        truncate_manifest(manifest_dir, count_records(manifest_dir) - 1)
        resumed = run_survey(
            **plan, shard_fn=kill_worker_once_shard, workers=2,
            manifest_dir=manifest_dir, max_shard_retries=2,
        )
        assert resumed.n_completed == 2
        assert resumed.ledger.to_text() == first.ledger.to_text()


# ----------------------------------------------------------------------
# The stall watchdog: SIGSTOPped workers.


class TestStallWatchdog:
    TIMEOUT = 1.5

    def test_hung_worker_killed_retried_in_isolation(self, tmp_path):
        """The satellite contract: a SIGSTOPped worker costs one shard
        timeout, the stalled shard is charged and retried in isolation,
        and nothing leaks — not a /dev/shm segment, not a pool break."""
        plan = _stub_plan(tmp_path)
        recorder = Recorder()
        before = _shm_segments()
        t0 = time.monotonic()
        report = run_survey(
            **plan,
            shard_fn=hang_worker_once_shard,
            workers=2,
            shard_timeout_s=self.TIMEOUT,
            max_shard_retries=2,
            telemetry=Telemetry(sinks=[recorder]),
        )
        elapsed = time.monotonic() - t0
        # One deadline for the hang plus the (instant) retries, bounded
        # well under the budget a second full deadline would cost.
        assert elapsed < 6 * self.TIMEOUT
        assert report.n_completed == 2 and not report.ledger.abandoned

        victim = _victim_id(plan)
        failures = report.ledger.failures_for(victim)
        assert [f.kind for f in failures] == [SHARD_STALLED]
        assert failures[0].charged and "worker killed" in failures[0].detail
        assert count_attempts(tmp_path, victim) == 2  # the hang, then the retry
        stalled = recorder.events("shard-stalled")
        assert len(stalled) == 1 and stalled[0]["attrs"]["isolated"] is True
        # A stall kill is the survey's own doing: it must never be
        # accounted as environment hostility.
        assert recorder.events("survey-stall-kill")
        assert not recorder.events("survey-pool-broke")
        assert _shm_segments() - before == set()

    def test_always_hanging_shard_abandoned_within_budget(self, tmp_path):
        plan = _stub_plan(tmp_path)
        before = _shm_segments()
        t0 = time.monotonic()
        report = run_survey(
            **plan,
            shard_fn=hang_worker_always_shard,
            workers=2,
            shard_timeout_s=1.0,
            max_shard_retries=1,
        )
        elapsed = time.monotonic() - t0
        victim = _victim_id(plan)
        assert victim in report.ledger.abandoned
        assert report.n_completed == 1  # the innocent shard finished
        failures = report.ledger.failures_for(victim)
        assert [f.kind for f in failures] == [SHARD_STALLED] * 2  # initial + 1 retry
        # Two armed deadlines (shared round + isolated retry), nothing more.
        assert elapsed < 8.0
        assert _shm_segments() - before == set()

    def test_serial_survey_with_watchdog_routes_through_pools(self, tmp_path):
        """``workers=1`` plus a timeout must still be killable: shards go
        through single-worker pools instead of inline calls."""
        plan = _stub_plan(tmp_path)
        report = run_survey(
            **plan,
            shard_fn=hang_worker_once_shard,
            workers=1,
            shard_timeout_s=1.0,
            max_shard_retries=2,
        )
        assert report.n_completed == 2
        kinds = {f.kind for f in report.ledger.failures}
        assert kinds == {SHARD_STALLED}


# ----------------------------------------------------------------------
# Graceful degradation: /dev/shm exhaustion with keep_spectra.


class TestShmExhaustion:
    def test_fallback_spectra_identical_to_arena_spectra(self):
        clean = run_survey(**REAL_PLAN, keep_spectra=True)
        with shm_exhausted(after=1):
            degraded = run_survey(**REAL_PLAN, keep_spectra=True)
        try:
            assert set(degraded.spectra) == set(clean.spectra)
            fallback_notes = [n for n in degraded.ledger.notes if n[1] == SHM_FALLBACK]
            assert len(fallback_notes) == 1  # exactly one allocation failed
            scope = fallback_notes[0][0]
            assert scope in degraded.spectra
            assert "pickle stream" in fallback_notes[0][2]
            for shard_id, spectra in clean.spectra.items():
                assert np.array_equal(degraded.spectra[shard_id].power, spectra.power)
            assert carrier_map(degraded) == carrier_map(clean)
        finally:
            clean.close()
            degraded.close()

    def test_total_exhaustion_degrades_every_shard(self):
        before = _shm_segments()
        with shm_exhausted(after=0):
            report = run_survey(**REAL_PLAN, keep_spectra=True)
        try:
            assert report.n_completed == 2
            assert len(report.spectra) == 2
            kinds = [n[1] for n in report.ledger.notes]
            assert kinds == [SHM_FALLBACK] * 2
            assert "degradation notes: 2 event(s)" in report.ledger.to_text()
        finally:
            report.close()
        assert _shm_segments() - before == set()


# ----------------------------------------------------------------------
# Adaptive plans: budget accounting across kill points.


class TestAdaptiveKillPoints:
    PLAN = dict(machines=MACHINES, pairs=ONE_PAIR, config=SMALL, seed=3, bands=2)
    PLANNER = AdaptivePlanner(capture_budget=0.75)

    def test_resume_preserves_capture_accounting(self, tmp_path):
        golden = tmp_path / "golden"
        baseline = run_survey(**self.PLAN, planner=self.PLANNER, manifest_dir=golden)
        acc = baseline.planning
        assert acc.captures_used + acc.captures_saved == acc.exhaustive_captures
        total = count_records(golden)
        assert total >= 8  # promises + outcomes + shards + decisions

        # Sample prefixes spanning the journal: before the pre-scan is
        # durable, mid-round, and one record short of complete.
        for keep in sorted({0, 1, total // 3, total // 2, total - 2, total - 1}):
            work = tmp_path / f"adaptive-{keep}"
            shutil.copytree(golden, work)
            truncate_manifest(work, keep)
            resumed = run_survey(**self.PLAN, planner=self.PLANNER, manifest_dir=work)
            racc = resumed.planning
            assert racc.captures_used == acc.captures_used, keep
            assert racc.captures_saved == acc.captures_saved, keep
            assert racc.prescan_captures == acc.prescan_captures, keep
            assert (
                racc.captures_used + racc.captures_saved == racc.exhaustive_captures
            ), keep
            assert carrier_map(resumed) == carrier_map(baseline), keep
            assert resumed.ledger.planned == baseline.ledger.planned, keep


# ----------------------------------------------------------------------
# Property pinning: arbitrary prefixes and arbitrary byte truncation.


@pytest.fixture(scope="module")
def stub_golden(tmp_path_factory):
    """One completed stub survey's manifest, to be mutilated per example."""
    base = tmp_path_factory.mktemp("chaos-prop")
    plan = _stub_plan(base)
    golden = base / "golden"
    report = run_survey(**plan, shard_fn=well_behaved_shard, manifest_dir=golden)
    assert report.n_completed == 2
    return plan, golden, count_records(golden), base


class TestInterruptProperties:
    @settings(
        max_examples=12, deadline=None, suppress_health_check=[HealthCheck.data_too_large]
    )
    @given(data=st.data())
    def test_any_record_prefix_resumes_complete(self, stub_golden, data):
        """For *every* kill point — any record prefix, torn tail or not —
        resume finishes the survey with full coverage and a clean ledger."""
        plan, golden, total, base = stub_golden
        keep = data.draw(st.integers(min_value=0, max_value=total), label="keep")
        tear = data.draw(st.booleans(), label="torn_tail")
        work = Path(tempfile.mkdtemp(prefix="prefix-", dir=base)) / "manifest"
        shutil.copytree(golden, work)
        truncate_manifest(work, keep)
        if tear:
            torn_manifest_tail(work)
        resumed = run_survey(**plan, shard_fn=well_behaved_shard, manifest_dir=work)
        assert resumed.n_completed == 2
        assert not resumed.ledger.failures and not resumed.ledger.abandoned
        # Stub shards report their preset key as the machine name.
        assert set(resumed.machines) == {"corei7_desktop", "turionx2_laptop"}

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_loader_tolerates_any_byte_truncation(self, stub_golden, data):
        """``load()`` never raises on a log cut at an arbitrary *byte*:
        whatever decodes is a subset of the intact state, and at most the
        torn final line is lost."""
        _, golden, total, base = stub_golden
        intact_bytes = (golden / "manifest.jsonl").read_bytes()
        intact = SurveyManifest(golden).open().load()
        cut = data.draw(st.integers(min_value=0, max_value=len(intact_bytes)), label="cut")
        work = Path(tempfile.mkdtemp(prefix="bytes-", dir=base)) / "manifest"
        shutil.copytree(golden, work)
        (work / "manifest.jsonl").write_bytes(intact_bytes[:cut])
        state = SurveyManifest(work).open().load()
        assert set(state.results) <= set(intact.results)
        assert state.n_records <= intact.n_records
        assert state.n_records >= total - _full_lines_lost(intact_bytes, cut) - 1
        for shard_id, result in state.results.items():
            assert result.activity.detections == intact.results[shard_id].activity.detections


def _full_lines_lost(data, cut):
    """How many complete journal lines a byte-truncation at ``cut`` removed."""
    return data.count(b"\n") - data[:cut].count(b"\n")
