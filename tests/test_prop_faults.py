"""Property-based guarantees of the degraded-mode scoring path.

Three invariants, searched over seeds/indices/fault classes instead of
hand-picked cases:

* excluding a *clean* capture (leave-one-out over N-1 spectra) never
  flips detection of a well-seeded carrier;
* a corrupted capture, once flagged, has *zero* influence: the degraded
  scores equal those of the same campaign with a clean capture flagged at
  the same index (the excluded trace's content is irrelevant);
* fault-plan campaigns are byte-reproducible across worker counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import FaseConfig, FaultPlan, MeasurementCampaign, MicroOp
from repro.core import CarrierDetector, HeuristicScorer
from repro.errors import DegradedCampaignError
from repro.core.campaign import CampaignMeasurement, CampaignResult
from repro.faults import FAULT_CLASSES
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.trace import SpectrumTrace
from repro.system import build_environment, corei7_desktop
from repro.uarch.activity import AlternationActivity

pytestmark = pytest.mark.robustness

GRID = FrequencyGrid(0.0, 1e6, 100.0)
FALTS = (43.3e3, 43.8e3, 44.3e3, 44.8e3, 45.3e3)
CONFIG = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="synthetic")
CARRIER = 500e3

#: One quiet machine shared by the campaign property (immutable during capture).
MACHINE = corei7_desktop(
    environment=build_environment(1e6, kind="quiet", rng=np.random.default_rng(0)),
    rng=np.random.default_rng(0),
)


def synthetic(seed, flagged=()):
    """A clean synthetic campaign with a carrier seeded at 500 kHz."""
    rng = np.random.default_rng(seed)
    measurements = []
    for index, falt in enumerate(FALTS):
        power = np.full(GRID.n_bins, 1e-15) * rng.gamma(4.0, 0.25, GRID.n_bins)
        power[GRID.index_of(CARRIER)] += 1e-9
        for sign in (+1, -1):
            power[GRID.index_of(CARRIER + sign * falt)] += 1e-11
        measurements.append(
            CampaignMeasurement(
                falt=falt,
                activity=AlternationActivity(falt=falt, levels_x={}, levels_y={}),
                trace=SpectrumTrace(GRID, power),
                flagged=index in flagged,
            )
        )
    return CampaignResult(
        config=CONFIG, machine_name="synthetic", activity_label="synthetic",
        measurements=measurements,
    )


def detects_carrier(result):
    return any(
        abs(d.frequency - CARRIER) < 1e3 for d in CarrierDetector().detect(result)
    )


@given(seed=st.integers(0, 2**16), flagged_index=st.integers(0, 4))
@settings(max_examples=25, deadline=None)
def test_clean_exclusion_never_flips_detection(seed, flagged_index):
    """Dropping any one clean spectrum from Eq. 1/2 must not lose a
    strongly seeded carrier (four sub-scores are plenty of evidence)."""
    assert detects_carrier(synthetic(seed))
    assert detects_carrier(synthetic(seed, flagged=(flagged_index,)))


@given(
    seed=st.integers(0, 2**16),
    corrupt_index=st.integers(0, 4),
    fault_class=st.sampled_from(sorted(set(FAULT_CLASSES) - {"drop"})),
)
@settings(max_examples=25, deadline=None)
def test_excluded_fault_has_zero_influence(seed, corrupt_index, fault_class):
    """Once the screen flags a capture, its *content* must be irrelevant:
    scores of the degraded campaign equal those of the same campaign with
    a clean capture flagged at the same index."""
    corrupted = synthetic(seed, flagged=(corrupt_index,))
    FAULT_CLASSES[fault_class](probability=1.0).apply(
        corrupted.measurements[corrupt_index].trace.power_mw,
        GRID,
        np.random.default_rng(seed + 1),
    )
    clean = synthetic(seed, flagged=(corrupt_index,))
    scorer = HeuristicScorer()
    degraded_scores = scorer.all_scores(corrupted)
    clean_scores = scorer.all_scores(clean)
    for harmonic in clean_scores:
        np.testing.assert_allclose(
            degraded_scores[harmonic], clean_scores[harmonic], rtol=1e-12
        )
    # and detection agrees with the clean-flagged run
    assert detects_carrier(corrupted) == detects_carrier(clean)


def _same_ledger(a, b):
    assert a.events == b.events
    assert a.retries == b.retries
    assert a.excluded == b.excluded
    assert a.dropped == b.dropped


@given(seed=st.integers(0, 2**10))
@settings(max_examples=5, deadline=None)
def test_fault_campaign_reproducible_across_workers(seed):
    """Traces, events, flags, and the ledger are functions of the seed
    alone — never of the thread schedule or worker count. An unlucky seed
    may legitimately degrade below two usable captures; the invariant then
    is that the *failure* (and its ledger) reproduces across workers."""
    results = []
    for n_workers in (1, 3):
        config = FaseConfig(
            span_low=0.0, span_high=1e6, fres=100.0, n_workers=n_workers, name="prop"
        )
        campaign = MeasurementCampaign(
            MACHINE, config, rng=np.random.default_rng(seed), fault_plan=FaultPlan.default()
        )
        try:
            results.append(campaign.run(MicroOp.LDM, MicroOp.LDL1))
        except DegradedCampaignError as exc:
            results.append(exc)
    serial, parallel = results
    assert isinstance(serial, DegradedCampaignError) == isinstance(
        parallel, DegradedCampaignError
    )
    if isinstance(serial, DegradedCampaignError):
        _same_ledger(serial.robustness, parallel.robustness)
        return
    _same_ledger(serial.robustness, parallel.robustness)
    assert len(serial.measurements) == len(parallel.measurements)
    for a, b in zip(serial.measurements, parallel.measurements):
        assert a.falt == b.falt
        assert a.flagged == b.flagged
        np.testing.assert_array_equal(a.trace.power_mw, b.trace.power_mw)
