"""Spread-spectrum clock emitters (Section 4.3)."""

import numpy as np
import pytest

from repro.errors import SystemModelError
from repro.spectrum.grid import FrequencyGrid
from repro.system.clocks import CPUClockEmitter, DRAMClockEmitter
from repro.system.domains import CORE, DRAM_BUS
from repro.uarch.activity import AlternationActivity

GRID = FrequencyGrid(329e6, 336e6, 2e3)


def make_clock(**kwargs):
    defaults = dict(clock_frequency=333e6, sweep_width=1e6, fundamental_dbm=-95.0)
    defaults.update(kwargs)
    return DRAMClockEmitter(**defaults)


class TestDRAMClock:
    def test_pedestal_occupies_sweep_band(self):
        power = make_clock().render(GRID, AlternationActivity.constant({DRAM_BUS: 1.0}))
        in_band = power[GRID.index_of(331.95e6) : GRID.index_of(333.05e6)].sum()
        assert in_band / power.sum() > 0.95

    def test_edge_horns(self):
        """Figure 14's twin humps at the sweep edges."""
        power = make_clock().render(GRID, AlternationActivity.constant({DRAM_BUS: 1.0}))
        center = power[GRID.index_of(332.5e6)]
        assert power[GRID.index_of(332.0e6)] > 2 * center
        assert power[GRID.index_of(333.0e6)] > 2 * center

    def test_amplitude_tracks_activity(self):
        """Figure 14: 0% vs 100% memory activity differ by several dB."""
        clock = make_clock(idle_fraction=0.3)
        idle = clock.render(GRID, AlternationActivity.constant({DRAM_BUS: 0.0}))
        busy = clock.render(GRID, AlternationActivity.constant({DRAM_BUS: 1.0}))
        i = GRID.index_of(332.5e6)
        ratio_db = 10 * np.log10(busy[i] / idle[i])
        assert 8.0 < ratio_db < 13.0  # (1/0.3)^2 ~ 10.5 dB

    def test_idle_pedestal_still_present(self):
        """The clock toggles the bus interface even when idle."""
        idle = make_clock().render(GRID, AlternationActivity.constant({DRAM_BUS: 0.0}))
        assert idle.sum() > 0

    def test_modulated_by_dram_activity_only(self):
        clock = make_clock()
        dram = AlternationActivity(falt=180e3, levels_x={DRAM_BUS: 0.9}, levels_y={DRAM_BUS: 0.0})
        core = AlternationActivity(falt=180e3, levels_x={CORE: 0.9}, levels_y={CORE: 0.0})
        assert clock.is_modulated_by(dram)
        assert not clock.is_modulated_by(core)

    def test_band_edges(self):
        low, high = make_clock().band_edges()
        assert low == pytest.approx(332e6)
        assert high == pytest.approx(333e6)

    def test_validation(self):
        with pytest.raises(SystemModelError):
            make_clock(idle_fraction=1.5)
        with pytest.raises(SystemModelError):
            make_clock(harmonic_decay_db=-3.0)
        with pytest.raises(SystemModelError):
            make_clock().envelope(1, 2.0)


class TestCPUClock:
    def test_unmodulated(self):
        """'We do not observe any variation in these signals in response to
        processor activity.'"""
        clock = CPUClockEmitter(clock_frequency=100e6, sweep_width=0.5e6)
        activity = AlternationActivity(falt=43e3, levels_x={CORE: 1.0}, levels_y={CORE: 0.0})
        assert not clock.is_modulated_by(activity)

    def test_renders_spread_pedestal(self):
        grid = FrequencyGrid(99e6, 101e6, 2e3)
        clock = CPUClockEmitter(clock_frequency=100e6, sweep_width=0.5e6, fundamental_dbm=-105.0)
        power = clock.render(grid, AlternationActivity.constant({}))
        occupied = power[power > 0]
        assert len(occupied) > 100  # spread, not a single line
