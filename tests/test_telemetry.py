"""Telemetry subsystem: spans, metrics, sinks, profiler, and campaign wiring.

The load-bearing invariant (the subsystem's acceptance criterion) is at
the bottom: a durable faulted campaign killed mid-run and resumed with a
JSONL sink attached produces a parseable event stream whose counter
totals exactly match the RobustnessReport ledger for the same run.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import DurableCampaign, FaseConfig, MeasurementCampaign, run_fase
from repro.errors import TelemetryError
from repro.faults import FaultPlan, RobustnessReport
from repro.faults.injectors import FaultEvent
from repro.spectrum.analyzer import StaticScene
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    JsonlSink,
    MetricsRegistry,
    NULL_TELEMETRY,
    Recorder,
    StageProfiler,
    Telemetry,
    Tracer,
    current_telemetry,
    read_jsonl,
    record_campaign_ledger,
    set_telemetry,
    use_telemetry,
)
from repro.uarch.activity import AlternationActivity
from repro.uarch.isa import MicroOp

pytestmark = pytest.mark.telemetry

FALTS = (1000.0, 1250.0, 1500.0, 1750.0, 2000.0)


@pytest.fixture(autouse=True)
def _ambient_reset():
    """Never leak an installed pipeline into other tests."""
    yield
    set_telemetry(None)


def make_config(**overrides):
    # span_low excludes the DC bin so end-to-end tests never detect a
    # 0 Hz "carrier"; falt1/f_delta put the five falts inside the span.
    overrides.setdefault("span_low", 100.0)
    overrides.setdefault("span_high", 2e4)
    overrides.setdefault("fres", 100.0)
    overrides.setdefault("falt1", 1000.0)
    overrides.setdefault("f_delta", 250.0)
    overrides.setdefault("name", "telemetry test")
    return FaseConfig(**overrides)


def make_activities(falts=FALTS):
    return [AlternationActivity(falt=falt, levels_x={}, levels_y={}) for falt in falts]


class StubMachine:
    """Millisecond-cheap machine: one static line per activity's falt."""

    name = "stub machine"

    def scene(self, activity):
        def power(grid):
            out = np.full(grid.n_bins, 1e-12)
            out[grid.index_of(activity.falt)] += 1e-9
            return out

        return StaticScene(power)


class KillAfter:
    """Raise KeyboardInterrupt on the (n+1)-th scene build: a mid-run kill."""

    def __init__(self, machine, n):
        self._machine = machine
        self._n = n
        self.count = 0

    @property
    def name(self):
        return self._machine.name

    def scene(self, activity):
        if self.count >= self._n:
            raise KeyboardInterrupt("simulated kill")
        self.count += 1
        return self._machine.scene(activity)


def fake_clock(step=1.0):
    """A deterministic perf_counter stand-in: advances ``step`` per call."""
    state = {"t": 0.0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


# ----------------------------------------------------------------------
# Ambient pipeline


class TestAmbient:
    def test_default_is_null(self):
        assert current_telemetry() is NULL_TELEMETRY
        assert not current_telemetry().enabled

    def test_use_telemetry_installs_and_restores(self):
        tel = Telemetry()
        with use_telemetry(tel):
            assert current_telemetry() is tel
        assert current_telemetry() is NULL_TELEMETRY

    def test_set_telemetry_none_means_off(self):
        previous = set_telemetry(Telemetry())
        assert previous is NULL_TELEMETRY
        set_telemetry(None)
        assert current_telemetry() is NULL_TELEMETRY

    def test_ambient_visible_from_worker_threads(self):
        # The pipeline is a module global, not a contextvar: campaign
        # thread pools must see the same instance as the installer.
        tel = Telemetry()
        seen = []
        with use_telemetry(tel):
            thread = threading.Thread(target=lambda: seen.append(current_telemetry()))
            thread.start()
            thread.join()
        assert seen == [tel]

    def test_concurrent_pipelines_do_not_clobber_each_other(self):
        # Regression: the service worker fleet runs whole run_fase
        # pipelines in sibling threads. Their per-pipeline installs used
        # to hit the shared global, and interleaved save/restores left a
        # stale pipeline installed process-wide; the thread-scoped
        # install must isolate each thread and leave the default alone
        # no matter how the lifetimes interleave.
        from repro.telemetry import use_thread_telemetry

        n_threads, rounds = 4, 25
        barrier = threading.Barrier(n_threads)
        mismatches = []

        def pipeline_thread(index):
            for _ in range(rounds):
                mine = Telemetry()
                barrier.wait()  # maximally interleave install/restore
                with use_thread_telemetry(mine):
                    if current_telemetry() is not mine:
                        mismatches.append(index)
                barrier.wait()

        threads = [
            threading.Thread(target=pipeline_thread, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not mismatches
        assert current_telemetry() is NULL_TELEMETRY

    def test_thread_install_shadows_then_restores_the_global(self):
        from repro.telemetry import use_thread_telemetry

        ambient, local = Telemetry(), Telemetry()
        with use_telemetry(ambient):
            with use_thread_telemetry(local):
                assert current_telemetry() is local
            assert current_telemetry() is ambient

    def test_parallel_captures_see_the_pipeline(self):
        # The pool-adoption path: run_fase(telemetry=...) with thread-
        # parallel pairs *and* captures must count every capture even
        # though the install is thread-scoped and pool workers are new
        # threads (they adopt the submitter's pipeline at pool creation).
        tel = Telemetry()
        run_fase(
            StubMachine(),
            pairs=[(MicroOp.LDM, MicroOp.LDL1), (MicroOp.LDL2, MicroOp.LDL1)],
            config=make_config(),
            rng=np.random.default_rng(1),
            n_workers=2,
            telemetry=tel,
        )
        snapshot = tel.metrics.snapshot()
        assert snapshot.counters["captures_total"] == 2 * len(FALTS)

    def test_null_telemetry_is_inert(self):
        with NULL_TELEMETRY.span("anything", stage="capture") as handle:
            handle.set(extra=1)
        NULL_TELEMETRY.event("anything")
        NULL_TELEMETRY.count("n")
        NULL_TELEMETRY.observe("h", 1.0)
        snap = NULL_TELEMETRY.snapshot()
        assert snap.counters == {} and snap.histograms == {}


# ----------------------------------------------------------------------
# Spans


class TestSpans:
    def test_nesting_sets_parent_ids(self):
        rec = Recorder()
        tel = Telemetry(sinks=[rec])
        with tel.span("outer") as outer:
            with tel.span("inner"):
                pass
        inner_rec, outer_rec = rec.spans("inner")[0], rec.spans("outer")[0]
        assert inner_rec["parent_id"] == outer.span_id
        assert outer_rec["parent_id"] is None

    def test_span_ids_are_seed_stable(self):
        def run():
            rec = Recorder()
            tel = Telemetry(sinks=[rec])
            for index in range(3):
                with tel.span("capture", index=index, attempt=0):
                    pass
                with tel.span("capture", index=index, attempt=0):
                    pass  # identical identity -> distinct occurrence
            return [r["span_id"] for r in rec.spans()]

        first, second = run(), run()
        assert first == second
        assert len(set(first)) == len(first)  # occurrence disambiguates repeats

    def test_error_status_on_exception(self):
        rec = Recorder()
        tel = Telemetry(sinks=[rec])
        with pytest.raises(RuntimeError):
            with tel.span("doomed"):
                raise RuntimeError("boom")
        assert rec.spans("doomed")[0]["status"] == "error"

    def test_set_attaches_attributes(self):
        rec = Recorder()
        tel = Telemetry(sinks=[rec])
        with tel.span("capture", index=2) as handle:
            handle.set(dropped=True)
        attrs = rec.spans("capture")[0]["attrs"]
        assert attrs == {"index": 2, "dropped": True}

    def test_events_parent_to_enclosing_span(self):
        rec = Recorder()
        tel = Telemetry(sinks=[rec])
        with tel.span("campaign") as campaign:
            tel.event("screen-rejection", index=4)
        event = rec.events("screen-rejection")[0]
        assert event["parent_id"] == campaign.span_id
        assert event["attrs"] == {"index": 4}

    def test_durations_from_injected_clock(self):
        records = []
        tracer = Tracer(records.append, clock=fake_clock())
        with tracer.span("work"):
            pass  # open at t=2, close at t=3
        assert records[0]["duration_s"] == pytest.approx(1.0)

    def test_exclusive_time_subtracts_children(self):
        closes = []
        tracer = Tracer(
            lambda record: None,
            on_close=lambda stage, dur, self_s: closes.append((stage, dur, self_s)),
            clock=fake_clock(),
        )
        with tracer.span("outer", stage="score"):
            with tracer.span("inner", stage="average"):
                pass
        (inner_stage, inner_dur, inner_self), (outer_stage, outer_dur, outer_self) = closes
        assert (inner_stage, outer_stage) == ("average", "score")
        assert inner_self == pytest.approx(inner_dur)
        assert outer_self == pytest.approx(outer_dur - inner_dur)


# ----------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.count("captures_total", 5)
        registry.count("captures_total")
        registry.gauge("workers", 4)
        registry.observe("stage_capture_seconds", 0.3)
        snap = registry.snapshot()
        assert snap.counter("captures_total") == 6
        assert snap.counter("missing", default=-1) == -1
        assert snap.gauges["workers"] == 4.0
        hist = snap.histograms["stage_capture_seconds"]
        assert hist.count == 1 and hist.sum == pytest.approx(0.3)
        assert hist.mean == pytest.approx(0.3)

    def test_histogram_bucket_placement_and_overflow(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.0, 2.0, 100.0):
            registry.observe("h", value, buckets=(1.0, 10.0))
        hist = registry.snapshot().histograms["h"]
        assert hist.buckets == (1.0, 10.0)
        assert hist.counts == (2, 1, 1)  # <=1, <=10, overflow

    def test_invalid_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.observe("h", 1.0, buckets=())
        with pytest.raises(TelemetryError):
            registry.observe("h", 1.0, buckets=(2.0, 1.0))

    def test_default_buckets_are_valid_and_increasing(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
        registry = MetricsRegistry()
        registry.observe("h", 0.02)
        assert registry.snapshot().histograms["h"].buckets == DEFAULT_TIME_BUCKETS

    def test_snapshot_is_frozen_against_later_updates(self):
        registry = MetricsRegistry()
        registry.count("n")
        snap = registry.snapshot()
        registry.count("n")
        assert snap.counter("n") == 1
        assert registry.snapshot().counter("n") == 2

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("n", 2)
        b.count("n", 3)
        b.count("only_b")
        a.gauge("g", 1.0)
        b.gauge("g", 2.0)
        a.observe("h", 0.5, buckets=(1.0, 10.0))
        b.observe("h", 5.0, buckets=(1.0, 10.0))
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counter("n") == 5
        assert merged.counter("only_b") == 1
        assert merged.gauges["g"] == 2.0  # last writer wins
        hist = merged.histograms["h"]
        assert hist.count == 2 and hist.counts == (1, 1, 0)
        assert hist.sum == pytest.approx(5.5)

    def test_merge_refuses_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0,))
        b.observe("h", 0.5, buckets=(2.0,))
        with pytest.raises(TelemetryError, match="bucket"):
            a.snapshot().merge(b.snapshot())

    def test_merge_refuses_torn_count_vectors(self):
        """Regression: a histogram with the right bucket bounds but a torn
        ``counts`` vector (a truncated foreign payload) merged positionally
        through ``zip``, silently dropping tail buckets and corrupting the
        totals of every later merge."""
        from repro.telemetry.metrics import HistogramSnapshot, MetricsSnapshot

        good = MetricsRegistry()
        good.observe("h", 0.5, buckets=(1.0, 10.0))
        torn = MetricsSnapshot(
            counters={},
            gauges={},
            histograms={
                "h": HistogramSnapshot(buckets=(1.0, 10.0), counts=(1,), count=1, sum=0.5)
            },
        )
        with pytest.raises(TelemetryError, match="count vectors"):
            good.snapshot().merge(torn)
        with pytest.raises(TelemetryError, match="count vectors"):
            torn.merge(good.snapshot())

    def test_from_dict_refuses_torn_count_vectors(self):
        """The cross-process revival path rejects the same tear at the
        boundary, so a torn shard payload is named at load, not at the
        first merge it would corrupt."""
        from repro.telemetry.metrics import MetricsSnapshot

        payload = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "h": {"buckets": [1.0, 10.0], "counts": [1, 2], "count": 3, "sum": 0.5}
            },
        }
        with pytest.raises(TelemetryError, match="overflow slot"):
            MetricsSnapshot.from_dict(payload)

    def test_from_dict_accepts_well_formed_histograms(self):
        from repro.telemetry.metrics import MetricsSnapshot

        registry = MetricsRegistry()
        registry.observe("h", 0.5, buckets=(1.0, 10.0))
        snap = registry.snapshot()
        revived = MetricsSnapshot.from_dict(snap.to_dict())
        assert revived.histograms["h"] == snap.histograms["h"]
        merged = revived.merge(snap)
        assert merged.histograms["h"].count == 2

    def test_registry_is_thread_safe(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.count("n")
                registry.observe("h", 0.01)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap.counter("n") == 8000
        assert snap.histograms["h"].count == 8000

    def test_to_dict_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.count("n", 2)
        registry.gauge("g", 1.5)
        registry.observe("h", 0.2)
        payload = json.dumps(registry.snapshot().to_dict())
        round_trip = json.loads(payload)
        assert round_trip["counters"] == {"n": 2}
        assert round_trip["histograms"]["h"]["count"] == 1


# ----------------------------------------------------------------------
# Sinks


class TestSinks:
    def test_recorder_filters(self):
        rec = Recorder()
        tel = Telemetry(sinks=[rec])
        with tel.span("a"):
            tel.event("e")
        assert len(rec.spans()) == 1 and len(rec.events()) == 1
        assert rec.spans("missing") == []

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "tel" / "run.jsonl"
        sink = JsonlSink(path)  # parent dir created on demand
        tel = Telemetry(sinks=[sink])
        with tel.span("capture", index=0):
            tel.event("fault-injected", fault="glitch")
        tel.emit_snapshot()
        tel.close()
        records = read_jsonl(path)
        assert [r["kind"] for r in records] == ["event", "span", "metrics"]
        assert records[1]["name"] == "capture"

    def test_jsonl_appends_across_reopens(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for run in range(2):
            sink = JsonlSink(path)
            sink.emit({"kind": "event", "run": run})
            sink.close()
        assert [r["run"] for r in read_jsonl(path)] == [0, 1]

    def test_emit_after_close_is_ignored(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.close()
        sink.emit({"kind": "event"})  # must not raise or resurrect the handle
        sink.close()
        assert read_jsonl(sink.path) == []

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "event", "n": 1}\n{"kind": "ev')
        assert read_jsonl(path) == [{"kind": "event", "n": 1}]

    def test_mid_file_damage_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "event", "n": 1}\ngarbage\n{"kind": "event", "n": 2}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_fsync_every_mode(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl", fsync_every=True)
        sink.emit({"kind": "event"})
        sink.close()
        assert len(read_jsonl(sink.path)) == 1


# ----------------------------------------------------------------------
# Profiler


class TestProfiler:
    def test_accumulates_calls_and_seconds(self):
        profiler = StageProfiler()
        profiler.add("capture", 1.0)
        profiler.add("capture", 2.0)
        profiler.add("score", 1.0)
        assert profiler.totals() == {"capture": (2, 3.0), "score": (1, 1.0)}
        assert profiler.total_seconds() == pytest.approx(4.0)

    def test_to_text_orders_by_time_and_sums_to_total(self):
        profiler = StageProfiler()
        profiler.add("score", 1.0)
        profiler.add("capture", 3.0)
        text = profiler.to_text()
        assert text.index("capture") < text.index("score")
        assert "100.0%" in text

    def test_empty_profile_text(self):
        assert "no instrumented stages" in StageProfiler().to_text()

    def test_pipeline_feeds_exclusive_time(self):
        tel = Telemetry(profile=True)
        tel.tracer = Tracer(tel._emit, on_close=tel._on_span_close, clock=fake_clock())
        with tel.span("score", stage="score"):
            with tel.span("average", stage="average"):
                pass
        totals = tel.profiler.totals()
        # score span lasted 3 ticks, its child 1 tick -> 2 exclusive.
        assert totals["average"] == (1, pytest.approx(1.0))
        assert totals["score"] == (1, pytest.approx(2.0))
        # The histogram keeps the inclusive duration.
        hist = tel.snapshot().histograms["stage_score_seconds"]
        assert hist.sum == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Campaign wiring


class TestCampaignWiring:
    def test_noop_default_leaves_results_identical(self):
        def run():
            campaign = MeasurementCampaign(
                StubMachine(), make_config(), rng=np.random.default_rng(1)
            )
            return campaign.run_with_activities(make_activities(), label="pair")

        clean = run()
        with use_telemetry(Telemetry(sinks=[Recorder()], profile=True)):
            instrumented = run()
        for ours, theirs in zip(instrumented.measurements, clean.measurements):
            np.testing.assert_array_equal(ours.trace.power_mw, theirs.trace.power_mw)

    def test_campaign_emits_capture_spans_and_ledger(self):
        rec = Recorder()
        tel = Telemetry(sinks=[rec])
        with use_telemetry(tel):
            MeasurementCampaign(
                StubMachine(), make_config(), rng=np.random.default_rng(1)
            ).run_with_activities(make_activities(), label="pair")
        assert len(rec.spans("capture")) == len(FALTS)
        assert len(rec.spans("campaign")) == 1
        campaign_id = rec.spans("campaign")[0]["span_id"]
        assert all(r["parent_id"] == campaign_id for r in rec.spans("capture"))
        # The "average" stage nests inside each capture.
        assert len(rec.spans("average")) == len(FALTS)
        assert tel.snapshot().counter("captures_total") == len(FALTS)

    def test_parallel_campaign_counts_match_serial(self):
        def counters(n_workers):
            tel = Telemetry()
            with use_telemetry(tel):
                MeasurementCampaign(
                    StubMachine(),
                    make_config(n_workers=n_workers),
                    rng=np.random.default_rng(1),
                ).run_with_activities(make_activities(), label="pair")
            return tel.snapshot().counter("captures_total")

        assert counters(1) == counters(4) == len(FALTS)

    def test_fault_plan_events_and_counters(self):
        rec = Recorder()
        tel = Telemetry(sinks=[rec])
        with use_telemetry(tel):
            campaign = MeasurementCampaign(
                StubMachine(),
                make_config(max_capture_retries=2),
                rng=np.random.default_rng(1),
                fault_plan=FaultPlan.default(("glitch",)),
            )
            result = campaign.run_with_activities(make_activities(), label="pair")
        robustness = result.robustness
        snap = tel.snapshot()
        assert snap.counter("faults_injected") == robustness.n_injected
        assert snap.counter("capture_retries") == sum(robustness.retries.values())
        assert snap.counter("screen_rejections") == sum(
            1 for m in result.measurements if m.flagged
        )
        assert len(rec.events("fault-injected")) == robustness.n_injected

    def test_record_campaign_ledger_mirrors_report(self):
        tel = Telemetry()
        robustness = RobustnessReport(
            plan_description="crafted",
            events=[
                FaultEvent(fault="glitch", index=0, attempt=0, detail=""),
                FaultEvent(fault="capture-timeout", index=1, attempt=0, detail=""),
            ],
            retries={1: 2},
            excluded={2: ("drift",)},
            dropped=(3,),
        )

        class Measurement:
            def __init__(self, flagged):
                self.flagged = flagged

        measurements = [Measurement(False), Measurement(True)]
        record_campaign_ledger(tel, measurements, robustness, resumed=(0,))
        snap = tel.snapshot()
        assert snap.counter("captures_total") == 2
        assert snap.counter("captures_resumed") == 1
        # n_injected excludes the timeout event; n_timeouts is only it.
        assert snap.counter("faults_injected") == robustness.n_injected == 1
        assert snap.counter("capture_timeouts") == robustness.n_timeouts == 1
        assert snap.counter("capture_retries") == 2
        assert snap.counter("captures_excluded") == robustness.n_excluded == 1
        assert snap.counter("captures_dropped") == 1
        assert snap.counter("screen_rejections") == 1


# ----------------------------------------------------------------------
# run_fase integration


class TestRunFase:
    def test_report_carries_snapshot_and_cache_counters(self):
        rec = Recorder()
        tel = Telemetry(sinks=[rec], profile=True)
        report = run_fase(
            StubMachine(),
            pairs=[(MicroOp.LDM, MicroOp.LDL1)],
            config=make_config(),
            rng=np.random.default_rng(1),
            telemetry=tel,
        )
        assert report.telemetry is not None
        counters = report.telemetry["counters"]
        assert counters["captures_total"] == len(FALTS)
        assert counters["scoring_cache_hits"] + counters["scoring_cache_misses"] > 0
        # Span taxonomy: one root, one pair, the four stages beneath.
        for name in ("run_fase", "pair", "campaign", "capture", "average", "score", "detect"):
            assert rec.spans(name), f"missing {name} spans"
        stages = set(tel.profiler.totals())
        assert {"capture", "average", "score", "detect"} <= stages
        # The final snapshot also went to the sink as one metrics record.
        assert [r for r in rec.records if r["kind"] == "metrics"]
        # Ambient pipeline restored after the run.
        assert current_telemetry() is NULL_TELEMETRY

    def test_run_fase_without_telemetry_leaves_report_field_none(self):
        report = run_fase(
            StubMachine(),
            pairs=[(MicroOp.LDM, MicroOp.LDL1)],
            config=make_config(),
            rng=np.random.default_rng(1),
        )
        assert report.telemetry is None


# ----------------------------------------------------------------------
# Acceptance: kill + resume with a JSONL sink; counters == report ledger


class TestKillResumeAcceptance:
    def _durable(self, journal_dir, machine=None):
        return DurableCampaign(
            machine or StubMachine(),
            make_config(max_capture_retries=2),
            journal_dir=journal_dir,
            rng=np.random.default_rng(1),
            fault_plan=FaultPlan.default(("glitch",)),
            sleep=lambda _: None,
        )

    def test_counters_match_robustness_ledger_across_kill_and_resume(self, tmp_path):
        jsonl = tmp_path / "telemetry.jsonl"
        journal_dir = tmp_path / "journal"

        # Run 1: killed after three captures, sink attached.
        tel = Telemetry(sinks=[JsonlSink(jsonl)])
        with pytest.raises(KeyboardInterrupt):
            with use_telemetry(tel):
                self._durable(journal_dir, machine=KillAfter(StubMachine(), 3)).run_with_activities(
                    make_activities(), label="pair"
                )
        tel.close()

        # Run 2: resume into the same JSONL file with a fresh pipeline.
        tel = Telemetry(sinks=[JsonlSink(jsonl)])
        with use_telemetry(tel):
            campaign = self._durable(journal_dir)
            result = campaign.run_with_activities(make_activities(), label="pair")
            tel.emit_snapshot()
        tel.close()

        assert campaign.resumed_indices  # the kill left something to resume
        robustness = result.robustness

        records = read_jsonl(jsonl)  # parseable end to end, both runs
        metrics = [r for r in records if r["kind"] == "metrics"][-1]
        counters = metrics["counters"]

        # The acceptance invariant: the telemetry stream's totals equal
        # the RobustnessReport ledger for the same run, exactly.
        assert counters["captures_total"] == len(result.measurements)
        assert counters["captures_resumed"] == len(campaign.resumed_indices)
        assert counters["faults_injected"] == robustness.n_injected
        assert counters.get("capture_timeouts", 0) == robustness.n_timeouts
        assert counters.get("capture_retries", 0) == sum(robustness.retries.values())
        assert counters.get("captures_excluded", 0) == robustness.n_excluded
        assert counters.get("captures_dropped", 0) == len(robustness.dropped)
        assert counters.get("screen_rejections", 0) == sum(
            1 for m in result.measurements if m.flagged
        )

        # Event stream agrees with the counters too.
        resumed_events = [
            r for r in records if r["kind"] == "event" and r["name"] == "capture-resumed"
        ]
        assert len(resumed_events) == len(campaign.resumed_indices)
        assert sorted(e["attrs"]["index"] for e in resumed_events) == sorted(
            campaign.resumed_indices
        )

    def test_timeouts_are_counted(self, tmp_path):
        import time as time_module

        class HangOnce:
            """Hang the second falt's first attempt past the watchdog."""

            def __init__(self, machine):
                self._machine = machine
                self._hung = False

            @property
            def name(self):
                return self._machine.name

            def scene(self, activity):
                if activity.falt == FALTS[1] and not self._hung:
                    self._hung = True
                    time_module.sleep(1.0)
                return self._machine.scene(activity)

        rec = Recorder()
        tel = Telemetry(sinks=[rec])
        with use_telemetry(tel):
            campaign = DurableCampaign(
                HangOnce(StubMachine()),
                make_config(max_capture_retries=2, capture_timeout_s=0.2),
                journal_dir=tmp_path / "journal",
                rng=np.random.default_rng(1),
                sleep=lambda _: None,
            )
            result = campaign.run_with_activities(make_activities(), label="pair")
        robustness = result.robustness
        snap = tel.snapshot()
        assert robustness.n_timeouts == 1
        assert snap.counter("capture_timeouts") == 1
        assert snap.counter("capture_retries") == sum(robustness.retries.values()) == 1
        assert len(rec.events("capture-timeout")) == 1


# ----------------------------------------------------------------------
# CLI flags


class TestCliTelemetry:
    def test_scan_writes_jsonl_and_prints_profile(self, tmp_path, capsys):
        from repro.cli import main

        jsonl = tmp_path / "tel.jsonl"
        code = main(
            [
                "scan", "--machine", "corei7_desktop", "--span-high", "1e6",
                "--fres", "100", "--pair", "LDM/LDL1",
                "--telemetry-jsonl", str(jsonl), "--profile",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "profile: campaign time by stage" in out
        records = read_jsonl(jsonl)
        kinds = {r["kind"] for r in records}
        assert {"span", "metrics"} <= kinds
        metrics = [r for r in records if r["kind"] == "metrics"][-1]
        assert metrics["counters"]["captures_total"] == 5
        # Flags are opt-in: the ambient pipeline is restored afterwards.
        assert current_telemetry() is NULL_TELEMETRY

    def test_analyze_prints_recovered_robustness(self, tmp_path, capsys):
        import time as time_module

        from repro.cli import main

        class HangOnce:
            """Hang the second falt's first attempt past the watchdog."""

            name = StubMachine.name

            def __init__(self):
                self._machine = StubMachine()
                self._hung = False

            def scene(self, activity):
                if activity.falt == FALTS[1] and not self._hung:
                    self._hung = True
                    time_module.sleep(1.0)
                return self._machine.scene(activity)

        journal_dir = tmp_path / "journal"
        DurableCampaign(
            HangOnce(),
            make_config(max_capture_retries=2, capture_timeout_s=0.2),
            journal_dir=journal_dir,
            rng=np.random.default_rng(1),
            sleep=lambda _: None,
        ).run_with_activities(make_activities(), label="pair")
        # The archive is gone; recovery replays the journaled retry/timeout
        # history as robustness context on the analyze output.
        code = main(
            ["analyze", str(tmp_path / "missing.npz"), "--journal", str(journal_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered from journal" in out
        assert "timed out" in out or "retried" in out or "capture-timeout" in out
