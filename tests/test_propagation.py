"""Distance and the near/far-field transition (§1 + the paper's ref [39]).

"EM emanations can be covertly recorded from a distance" — but which
emanations? A 315 kHz regulator carrier is deep in the magnetic near field
at any lab distance (λ/2π ≈ 150 m) and its received power collapses as
(d_ref/d)⁶; the 333 MHz DRAM clock is already radiating at 30 cm and only
loses (d_ref/d)². At 1 m the regulators and the refresh comb are gone
while the DRAM clock's edge carriers are still detected — matching ref
[39]'s report of multi-meter reception for high-frequency emanations.
"""

import numpy as np
import pytest

from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.core import CarrierDetector
from repro.errors import SystemModelError
from repro.system import ReceiverChain, SystemModel, build_environment, corei7_desktop


def machine_at(distance_cm, environment_span=4e6, seed=0, gain_db=0.0):
    from repro.system import LoopAntenna

    base = corei7_desktop(
        environment=build_environment(environment_span, rng=np.random.default_rng(seed)),
        rng=np.random.default_rng(seed),
    )
    return SystemModel(
        base.name,
        base.emitters,
        environment=base.environment,
        receiver=ReceiverChain(
            antenna=LoopAntenna(gain_db=gain_db), distance_cm=distance_cm
        ),
    )


class TestCouplingLaw:
    def test_reference_distance_is_unity_for_all_frequencies(self):
        chain = ReceiverChain()
        for frequency in (128e3, 315e3, 333e6):
            assert chain.power_coupling(frequency=frequency) == pytest.approx(1.0)

    def test_near_field_six_db_per_octave_times_six(self):
        chain = ReceiverChain(distance_cm=60.0)
        assert chain.power_coupling(frequency=315e3) == pytest.approx(0.5**6)

    def test_far_field_two_exponent(self):
        # both 30 cm and 300 cm are beyond 333 MHz's 14 cm transition
        chain = ReceiverChain(distance_cm=300.0)
        assert chain.power_coupling(frequency=333e6) == pytest.approx(0.1**2)

    def test_high_frequency_carries_much_farther(self):
        chain = ReceiverChain(distance_cm=300.0)
        low = chain.power_coupling(frequency=315e3)
        high = chain.power_coupling(frequency=333e6)
        assert high > 1e3 * low

    def test_transition_radius(self):
        assert ReceiverChain.transition_radius_cm(333e6) == pytest.approx(14.3, rel=0.01)
        with pytest.raises(SystemModelError):
            ReceiverChain.transition_radius_cm(0.0)

    def test_legacy_frequencyless_law_unchanged(self):
        chain = ReceiverChain(distance_cm=15.0)
        assert chain.power_coupling() == pytest.approx(2.0**6)


class TestDetectionVsDistance:
    def test_low_band_carriers_lost_at_one_meter(self):
        machine = machine_at(100.0)
        config = FaseConfig(span_low=0.0, span_high=2e6, fres=100.0, name="1 m low band")
        campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        assert CarrierDetector().detect(result) == []

    def test_dram_clock_detected_at_one_meter_with_directive_antenna(self):
        """§3: 'attacks exploiting a particular set of carrier signals could
        likely be carried out at larger distances using more directive
        antennae optimized for higher gain across a narrower frequency
        band.' A +20 dB directive antenna at 1 m restores the radiating
        clock's margin (far-field loss is only 10.5 dB) — while the
        near-field regulators, 60 dB down, stay unrecoverable."""
        machine = machine_at(100.0, environment_span=340e6, gain_db=20.0)
        config = FaseConfig(
            span_low=329e6, span_high=336e6, fres=2e3,
            falt1=1800e3, f_delta=100e3, name="1 m clock window",
        )
        campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        detections = CarrierDetector(min_separation_hz=150e3).detect(result)
        assert detections, "the radiating clock must survive at 1 m with gain"
        for detection in detections:
            edge = min(abs(detection.frequency - 332e6), abs(detection.frequency - 333e6))
            assert edge < 150e3

    def test_low_band_mostly_lost_at_one_meter_even_with_gain(self):
        """+20 dB buys back only a third of the 60 dB near-field loss: at
        most the single strongest regulator fundamental survives, the
        refresh comb and every higher harmonic are gone (vs ~12 carriers
        at the 30 cm reference)."""
        machine = machine_at(100.0, gain_db=20.0)
        config = FaseConfig(span_low=0.0, span_high=2e6, fres=100.0, name="1 m + gain")
        campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        detections = CarrierDetector().detect(result)
        assert len(detections) <= 2
        for detection in detections:
            # the refresh comb (crystal lines, weaker than the regulator
            # fundamentals) does not survive the distance
            assert abs(detection.frequency - 512e3) > 2e3
            assert abs(detection.frequency - 1024e3) > 2e3
