"""Seed robustness: the headline results hold across random realizations.

The paper's findings must not depend on a lucky noise draw or a particular
arrangement of radio stations: for several campaign seeds and environment
realizations, the i7's three memory-side sets are found, the on-chip pair
reports only the core regulator, and the null control stays empty.
"""

import numpy as np
import pytest

from repro import MeasurementCampaign, MicroOp, campaign_low_band
from repro.core import CarrierDetector, group_harmonics
from repro.system import build_environment, corei7_desktop


def run_detection(env_seed, campaign_seed, op_x, op_y):
    machine = corei7_desktop(
        environment=build_environment(4e6, rng=np.random.default_rng(env_seed)),
        rng=np.random.default_rng(env_seed),
    )
    campaign = MeasurementCampaign(
        machine, campaign_low_band(), rng=np.random.default_rng(campaign_seed)
    )
    result = campaign.run(op_x, op_y, label=f"{op_x.value}/{op_y.value}")
    return machine, result, CarrierDetector().detect(result)


@pytest.mark.parametrize("env_seed,campaign_seed", [(0, 11), (5, 13), (9, 17)])
def test_memory_pair_sets_stable(env_seed, campaign_seed):
    machine, result, detections = run_detection(
        env_seed, campaign_seed, MicroOp.LDM, MicroOp.LDL1
    )
    sets = group_harmonics(detections)
    fundamentals = sorted(s.fundamental for s in sets)
    assert len(sets) == 3, [f"{f / 1e3:.1f}k" for f in fundamentals]
    assert abs(fundamentals[0] - 225e3) < 2e3
    assert abs(fundamentals[1] - 315e3) < 2e3
    assert abs(fundamentals[2] - 512e3) < 2e3
    # zero false positives against model ground truth
    truth = []
    activity = result.measurements[0].activity
    for emitter in machine.modulated_emitters(activity):
        truth.extend(emitter.carrier_frequencies(up_to=4e6))
    truth = np.array(truth)
    for detection in detections:
        assert np.min(np.abs(truth - detection.frequency)) < 1e3


@pytest.mark.parametrize("env_seed,campaign_seed", [(0, 11), (5, 13)])
def test_onchip_pair_stable(env_seed, campaign_seed):
    _, _, detections = run_detection(env_seed, campaign_seed, MicroOp.LDL2, MicroOp.LDL1)
    assert detections, "core regulator must be found"
    for detection in detections:
        assert abs(detection.frequency % 333e3) < 3e3 or abs(
            333e3 - detection.frequency % 333e3
        ) < 3e3


@pytest.mark.parametrize("env_seed,campaign_seed", [(0, 11), (5, 13), (9, 17)])
def test_null_pair_stays_empty(env_seed, campaign_seed):
    _, _, detections = run_detection(env_seed, campaign_seed, MicroOp.LDL1, MicroOp.LDL1)
    assert detections == []
