"""Pulse-train Fourier analysis: the Section 2.1 duty-cycle facts."""

import numpy as np
import pytest

from repro.errors import UnitsError
from repro.signals.pulse import (
    duty_cycle_sensitivity,
    pulse_harmonic_amplitude,
    pulse_harmonic_amplitudes,
    pulse_harmonic_power,
)


class TestHarmonicAmplitude:
    def test_dc_equals_duty_cycle(self):
        assert pulse_harmonic_amplitude(0, 0.3) == pytest.approx(0.3)

    def test_even_harmonics_vanish_at_half_duty(self):
        """Paper: 'amplitudes of the even harmonics trend toward zero' at 50%."""
        for n in (2, 4, 6, 8):
            assert pulse_harmonic_amplitude(n, 0.5) == pytest.approx(0.0, abs=1e-12)

    def test_odd_harmonics_maximal_at_half_duty(self):
        """Odd harmonics attain their global maximum value at 50% duty.

        (For n > 1 the same maximum 1/(pi n) recurs at other duties — e.g.
        d = 1/6 for n = 3 — so we check the value, not argmax uniqueness.)
        """
        duties = np.linspace(0.01, 0.99, 491)
        for n in (1, 3, 5):
            sweep_max = max(pulse_harmonic_amplitude(n, d) for d in duties)
            at_half = pulse_harmonic_amplitude(n, 0.5)
            assert at_half == pytest.approx(sweep_max, rel=1e-4)

    def test_odd_harmonic_value_at_half_duty(self):
        # |c_n| = 1/(pi n) for odd n at d = 0.5
        for n in (1, 3, 5):
            assert pulse_harmonic_amplitude(n, 0.5) == pytest.approx(1.0 / (np.pi * n))

    def test_small_duty_harmonics_similar_strength(self):
        """Paper: for <10% duty the first few harmonics decay ~linearly and
        remain comparable (the refresh comb's equal-strength harmonics)."""
        duty = 0.025
        values = [pulse_harmonic_amplitude(n, duty) for n in range(1, 9)]
        assert max(values) / min(values) < 1.2

    def test_small_duty_near_linear_decay(self):
        """Paper: at small duty the first few harmonics 'decay approximately
        linearly' — a straight-line fit captures them to within a few %."""
        duty = 0.05
        orders = np.arange(1, 6)
        values = np.array([pulse_harmonic_amplitude(int(n), duty) for n in orders])
        assert np.all(np.diff(values) < 0)
        slope, intercept = np.polyfit(orders, values, 1)
        residuals = values - (slope * orders + intercept)
        assert np.abs(residuals).max() < 0.02 * values.mean()

    def test_negative_harmonic_mirrors_positive(self):
        assert pulse_harmonic_amplitude(-3, 0.2) == pulse_harmonic_amplitude(3, 0.2)

    def test_symmetry_in_duty(self):
        """|c_n(d)| = |c_n(1-d)|: complementary pulse trains share magnitudes."""
        for n in range(1, 7):
            assert pulse_harmonic_amplitude(n, 0.2) == pytest.approx(
                pulse_harmonic_amplitude(n, 0.8)
            )

    def test_invalid_duty_rejected(self):
        with pytest.raises(UnitsError):
            pulse_harmonic_amplitude(1, 1.5)
        with pytest.raises(UnitsError):
            pulse_harmonic_amplitude(1, -0.1)


class TestHarmonicVector:
    def test_matches_scalar(self):
        values = pulse_harmonic_amplitudes(6, 0.3)
        for n in range(1, 7):
            assert values[n - 1] == pytest.approx(pulse_harmonic_amplitude(n, 0.3))

    def test_length(self):
        assert len(pulse_harmonic_amplitudes(11, 0.1)) == 11

    def test_zero_harmonics_rejected(self):
        with pytest.raises(UnitsError):
            pulse_harmonic_amplitudes(0, 0.5)


class TestHarmonicPower:
    def test_parseval(self):
        """Total harmonic + DC power equals the mean-square of the pulse train.

        For a unit pulse train of duty d: mean square = d. The Fourier side:
        d^2 (DC) + sum_n 2|c_n|^2 -> d as the harmonic count grows.
        """
        duty = 0.3
        total = pulse_harmonic_power(0, duty)
        for n in range(1, 20000):
            total += pulse_harmonic_power(n, duty)
        assert total == pytest.approx(duty, rel=1e-3)

    def test_power_is_twice_amplitude_squared(self):
        amplitude = pulse_harmonic_amplitude(3, 0.2)
        assert pulse_harmonic_power(3, 0.2) == pytest.approx(2 * amplitude * amplitude)


class TestDutyCycleSensitivity:
    def test_first_harmonic_small_duty_positive(self):
        """More duty -> stronger fundamental: the PWM-to-AM mechanism."""
        assert duty_cycle_sensitivity(1, 0.1) > 0

    def test_matches_numeric_gradient(self):
        duty, eps = 0.11, 1e-5
        numeric = (
            pulse_harmonic_amplitude(2, duty + eps) - pulse_harmonic_amplitude(2, duty - eps)
        ) / (2 * eps)
        assert duty_cycle_sensitivity(2, duty) == pytest.approx(numeric, rel=1e-3)

    def test_odd_harmonic_flat_at_half_duty(self):
        """Odd harmonics are at their maximum at 50% -> zero sensitivity."""
        assert duty_cycle_sensitivity(1, 0.5) == pytest.approx(0.0, abs=1e-4)
