"""FM-FASE: the Section 4.4 future-work extension, tested on the Turion."""

import numpy as np
import pytest

from repro.core.fmfase import AM_CARRIER, FM_CARRIER, STATIC_SIGNAL, FmFaseScanner, SweptHump
from repro.errors import DetectionError
from repro.spectrum.grid import FrequencyGrid
from repro.system import build_environment, turionx2_laptop
from repro.system.domains import CORE


@pytest.fixture(scope="module")
def turion_quiet():
    return turionx2_laptop(
        environment=build_environment(1.2e6, kind="quiet"), rng=np.random.default_rng(0)
    )


@pytest.fixture(scope="module")
def scanner():
    grid = FrequencyGrid(150e3, 700e3, 50.0)
    return FmFaseScanner(grid, CORE, levels=(0.0, 0.25, 0.5, 0.75, 1.0))


class TestSweptHump:
    def make_hump(self, centroids, powers):
        return SweptHump(
            idle_frequency=centroids[0],
            centroids=tuple(centroids),
            band_powers=tuple(powers),
            levels=(0.0, 0.5, 1.0),
        )

    def test_fm_classification(self):
        hump = self.make_hump([300e3, 310e3, 320e3], [1.0, 1.0, 1.0])
        assert hump.classify(min_shift_hz=5e3) == FM_CARRIER

    def test_am_classification(self):
        hump = self.make_hump([300e3, 300e3, 300e3], [1.0, 2.0, 4.0])
        assert hump.classify(min_shift_hz=5e3) == AM_CARRIER

    def test_static_classification(self):
        hump = self.make_hump([300e3, 300.1e3, 300e3], [1.0, 1.05, 1.0])
        assert hump.classify(min_shift_hz=5e3) == STATIC_SIGNAL

    def test_non_monotone_shift_not_fm(self):
        hump = self.make_hump([300e3, 330e3, 310e3], [1.0, 1.0, 1.0])
        assert hump.classify(min_shift_hz=5e3) != FM_CARRIER


class TestScannerOnTurion:
    def test_finds_the_cot_regulator_as_fm(self, turion_quiet, scanner):
        """The AMD constant-on-time core regulator, invisible to AM-FASE,
        is exactly what FM-FASE must find."""
        fm = scanner.fm_carriers(turion_quiet)
        assert len(fm) >= 1
        regulator = turion_quiet.emitter_named("CPU core regulator (constant on-time)")
        f_idle = regulator.frequency_at(0.0)
        f_loaded = regulator.frequency_at(1.0)
        match = min(fm, key=lambda d: abs(d.hump.idle_frequency - f_idle))
        assert abs(match.hump.idle_frequency - f_idle) < 10e3
        # the measured shift approximates the regulator's physical swing
        assert match.hump.frequency_shift == pytest.approx(f_loaded - f_idle, rel=0.35)

    def test_am_regulator_not_classified_fm(self, turion_quiet, scanner):
        """The 250 kHz memory regulator is AM (under DRAM load) and simply
        static under a *core* sweep: it must not appear as FM."""
        for detection in scanner.scan(turion_quiet):
            if abs(detection.hump.idle_frequency - 250e3) < 5e3:
                assert detection.kind != FM_CARRIER

    def test_refresh_comb_not_fm(self, turion_quiet, scanner):
        for detection in scanner.scan(turion_quiet):
            if abs(detection.hump.idle_frequency - 264e3) < 3e3:
                assert detection.kind != FM_CARRIER

    def test_describe(self, turion_quiet, scanner):
        fm = scanner.fm_carriers(turion_quiet)
        assert "FM carrier" in fm[0].describe()


class TestValidation:
    def test_needs_three_levels(self):
        grid = FrequencyGrid(0.0, 1e6, 100.0)
        with pytest.raises(DetectionError):
            FmFaseScanner(grid, CORE, levels=(0.0, 1.0))

    def test_levels_sorted(self):
        grid = FrequencyGrid(0.0, 1e6, 100.0)
        with pytest.raises(DetectionError):
            FmFaseScanner(grid, CORE, levels=(0.0, 1.0, 0.5))
