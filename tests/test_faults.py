"""Robustness tier: fault injection, screening, and degraded campaigns.

Two layers of guarantees:

* unit — each injector corrupts a power array exactly as documented, and
  the cohort screen catches each corruption class on synthetic cohorts;
* acceptance — a Fig. 11-style campaign under each fault class at its
  documented default severity still detects the seeded 315 kHz carrier,
  and the robustness report accounts for every injected fault.

Run just this tier with ``pytest -m robustness``.
"""

import numpy as np
import pytest

from repro import FaseConfig, FaultPlan, MeasurementCampaign, MicroOp, run_fase
from repro.core import CarrierDetector
from repro.errors import (
    CaptureFaultError,
    DegradedCampaignError,
    SystemModelError,
)
from repro.faults import (
    FAULT_CLASSES,
    AdcClipping,
    CaptureDrop,
    CaptureScreen,
    FaultyAnalyzer,
    FrequencyDrift,
    GlitchBins,
    RobustnessReport,
    TransientInterference,
)
from repro.spectrum.analyzer import SpectrumAnalyzer, StaticScene
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.trace import SpectrumTrace

pytestmark = pytest.mark.robustness

GRID = FrequencyGrid(0.0, 200e3, 100.0)


def noise_power(seed, lines=((500, 1e-10), (1200, 3e-11), (1700, 2e-11))):
    """A capture-like power array: Gamma noise floor plus a few lines."""
    rng = np.random.default_rng(seed)
    power = 1e-15 * rng.gamma(4.0, 0.25, GRID.n_bins)
    for bin_index, level in lines:
        power[bin_index] += level
    return power


class TestInjectors:
    def test_probability_validated(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(SystemModelError):
                GlitchBins(probability=bad)

    def test_fires_matches_probability_draw(self):
        always = CaptureDrop(probability=1.0)
        never = CaptureDrop(probability=0.0)
        rng = np.random.default_rng(0)
        assert always.fires(rng)
        assert not never.fires(rng)

    def test_interference_adds_localized_burst(self):
        power = noise_power(0)
        before = power.sum()
        injector = TransientInterference(probability=1.0, power_dbm=-75.0, width_bins=5)
        detail = injector.apply(power, GRID, np.random.default_rng(1))
        added = power.sum() - before
        assert added == pytest.approx(injector.power_mw, rel=1e-9)
        assert "burst at" in detail

    def test_clipping_flattens_above_ceiling(self):
        power = noise_power(0)
        injector = AdcClipping(probability=1.0, ceiling_dbm=-108.0)
        detail = injector.apply(power, GRID, np.random.default_rng(1))
        assert power.max() <= injector.ceiling_mw
        assert "clipped" in detail

    def test_drift_moves_features_by_bounded_offset(self):
        spike_bin = 900
        power = noise_power(0, lines=((spike_bin, 1e-9),))
        injector = FrequencyDrift(probability=1.0, min_offset_bins=4, max_offset_bins=12)
        injector.apply(power, GRID, np.random.default_rng(2))
        landed = int(np.argmax(power))
        assert 4 <= abs(landed - spike_bin) <= 12

    def test_glitch_spikes_bounded_bin_count(self):
        power = noise_power(0, lines=())
        injector = GlitchBins(probability=1.0, min_bins=8, max_bins=24, power_dbm=-80.0)
        injector.apply(power, GRID, np.random.default_rng(3))
        spiked = int(np.count_nonzero(power > injector.power_mw * 0.5))
        assert 8 <= spiked <= 24

    def test_plan_default_covers_registry_in_order(self):
        plan = FaultPlan.default()
        assert [injector.name for injector in plan.injectors] == list(FAULT_CLASSES)

    def test_plan_subset_and_unknown_class(self):
        plan = FaultPlan.default(("glitch", "drop"))
        # canonical order regardless of how the caller named them
        assert [injector.name for injector in plan.injectors] == ["drop", "glitch"]
        with pytest.raises(SystemModelError):
            FaultPlan.default(("gremlins",))

    def test_plan_rejects_duplicate_classes(self):
        with pytest.raises(SystemModelError):
            FaultPlan([GlitchBins(), GlitchBins()])

    def test_corrupt_records_events(self):
        plan = FaultPlan([GlitchBins(probability=1.0)])
        power = noise_power(0)
        _, events = plan.corrupt(power, GRID, np.random.default_rng(0), index=3, attempt=1)
        assert len(events) == 1
        assert events[0].fault == "glitch"
        assert events[0].index == 3 and events[0].attempt == 1
        assert "glitch" in events[0].describe()

    def test_drop_raises_with_events_so_far(self):
        plan = FaultPlan([CaptureDrop(probability=1.0)])
        with pytest.raises(CaptureFaultError) as excinfo:
            plan.corrupt(noise_power(0), GRID, np.random.default_rng(0), index=2)
        assert excinfo.value.events[0].fault == "drop"


class TestCaptureScreen:
    def cohort(self, n=5):
        return [SpectrumTrace(GRID, noise_power(seed)) for seed in range(n)]

    def test_clean_cohort_passes(self):
        screen = CaptureScreen()
        traces = self.cohort()
        reference = screen.reference(traces)
        for trace in traces:
            assert screen.assess(trace, reference).ok

    def corrupted_flagged(self, injector, expect):
        screen = CaptureScreen()
        traces = self.cohort()
        injector.apply(traces[2].power_mw, GRID, np.random.default_rng(9))
        reference = screen.reference(traces)
        quality = screen.assess(traces[2], reference)
        assert not quality.ok
        assert any(expect in reason for reason in quality.reasons), quality.reasons

    def test_burst_flagged(self):
        self.corrupted_flagged(
            TransientInterference(probability=1.0, power_dbm=-75.0), "envelope"
        )

    def test_glitches_flagged(self):
        self.corrupted_flagged(GlitchBins(probability=1.0), "outlier bins")

    def test_clipping_flagged(self):
        self.corrupted_flagged(AdcClipping(probability=1.0, ceiling_dbm=-108.0), "clipping")

    def test_drift_flagged(self):
        self.corrupted_flagged(FrequencyDrift(probability=1.0), "drift")

    def test_reference_needs_two_captures(self):
        with pytest.raises(SystemModelError):
            CaptureScreen().reference(self.cohort(1))

    def test_threshold_validation(self):
        with pytest.raises(SystemModelError):
            CaptureScreen(envelope_ratio=0.5)
        with pytest.raises(SystemModelError):
            CaptureScreen(clip_tie_bins=1)
        with pytest.raises(SystemModelError):
            CaptureScreen(drift_tolerance_bins=64, max_drift_bins=64)


class TestFaultyAnalyzer:
    def test_events_accumulate_and_grid_preserved(self):
        scene = StaticScene(noise_power(0))
        analyzer = FaultyAnalyzer(
            SpectrumAnalyzer(rng=np.random.default_rng(0)),
            FaultPlan([GlitchBins(probability=1.0)]),
            np.random.default_rng(1),
            index=4,
        )
        trace = analyzer.capture(scene, GRID, label="x")
        assert trace.grid == GRID
        assert [event.fault for event in analyzer.events] == ["glitch"]
        assert analyzer.events[0].index == 4

    def test_drop_reraises_but_keeps_events(self):
        scene = StaticScene(noise_power(0))
        analyzer = FaultyAnalyzer(
            SpectrumAnalyzer(rng=np.random.default_rng(0)),
            FaultPlan([CaptureDrop(probability=1.0)]),
            np.random.default_rng(1),
        )
        with pytest.raises(CaptureFaultError):
            analyzer.capture(scene, GRID)
        assert [event.fault for event in analyzer.events] == ["drop"]


class TestDegradedCampaign:
    def test_none_plan_matches_clean_parallel_bytes(self, machine_factory):
        """The degraded path with no injectors must reproduce the clean
        parallel capture path bit-for-bit (same per-index streams)."""
        machine = machine_factory(span=1e6, kind="quiet")
        config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, n_workers=2, name="x")
        degraded = MeasurementCampaign(
            machine, config, rng=np.random.default_rng(5), fault_plan=FaultPlan.none()
        ).run(MicroOp.LDM, MicroOp.LDL1)
        clean = MeasurementCampaign(machine, config, rng=np.random.default_rng(5)).run(
            MicroOp.LDM, MicroOp.LDL1
        )
        for a, b in zip(degraded.measurements, clean.measurements):
            np.testing.assert_array_equal(a.trace.power_mw, b.trace.power_mw)
        assert degraded.robustness.n_injected == 0
        assert degraded.robustness.n_excluded == 0

    def test_all_captures_dropped_raises(self, machine_factory):
        machine = machine_factory(span=1e6, kind="quiet")
        config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="x")
        campaign = MeasurementCampaign(
            machine,
            config,
            rng=np.random.default_rng(1),
            fault_plan=FaultPlan([CaptureDrop(probability=1.0)]),
        )
        with pytest.raises(DegradedCampaignError) as excinfo:
            campaign.run(MicroOp.LDM, MicroOp.LDL1)
        # the error carries the ledger: every attempt of every index dropped
        robustness = excinfo.value.robustness
        assert robustness.dropped == (0, 1, 2, 3, 4)
        assert robustness.faults_by_class() == {"drop": 5 * (config.max_capture_retries + 1)}

    def test_partial_drops_keep_campaign_alive(self, machine_factory):
        machine = machine_factory(span=1e6, kind="quiet")
        config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="x")
        campaign = MeasurementCampaign(
            machine,
            config,
            rng=np.random.default_rng(3),
            fault_plan=FaultPlan([CaptureDrop(probability=0.5)]),
        )
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1)
        robustness = result.robustness
        assert len(result.measurements) + len(robustness.dropped) == 5
        for index in robustness.dropped:
            assert "dropped" in robustness.excluded[index][0]
        # a drop consumes the whole retry budget before exclusion
        for index in robustness.dropped:
            assert robustness.retries[index] == config.max_capture_retries

    def test_retry_accounting_consistent(self, campaign_factory):
        result = campaign_factory(fault_plan=FaultPlan.default(), seed=7)
        robustness = result.robustness
        # every retry was forced by something: a fault event or a screen flag
        for index, extra in robustness.retries.items():
            assert extra >= 1
            culprits = [event for event in robustness.events if event.index == index]
            assert culprits or index in robustness.excluded
        # events on attempt k imply at least k extra attempts were granted
        for event in robustness.events:
            if event.attempt > 0:
                assert robustness.retries[event.index] >= event.attempt

    def test_worker_count_invariance_with_faults(self, machine_factory):
        machine = machine_factory(span=2e6)
        outcomes = []
        for n_workers in (1, 4):
            config = FaseConfig(
                span_low=0.0, span_high=2e6, fres=100.0, n_workers=n_workers, name="x"
            )
            campaign = MeasurementCampaign(
                machine, config, rng=np.random.default_rng(7), fault_plan=FaultPlan.default()
            )
            outcomes.append(campaign.run(MicroOp.LDM, MicroOp.LDL1))
        serial, parallel = outcomes
        assert serial.robustness.events == parallel.robustness.events
        assert serial.robustness.excluded == parallel.robustness.excluded
        for a, b in zip(serial.measurements, parallel.measurements):
            assert a.flagged == b.flagged
            np.testing.assert_array_equal(a.trace.power_mw, b.trace.power_mw)

    def test_scoring_view_needs_two_usable(self, synthetic_campaign):
        starved = synthetic_campaign(flagged=(0, 1, 2, 3))
        with pytest.raises(DegradedCampaignError):
            starved.scoring_view()

    def test_with_flags_cleared_restores_full_cohort(self, synthetic_campaign):
        flagged = synthetic_campaign(carrier=500e3, flagged=(1, 3))
        cleared = flagged.with_flags_cleared()
        assert cleared.excluded_indices == []
        assert len(cleared.measurements) == 5


class TestAcceptancePerFaultClass:
    """Fig. 11 campaign (LDM/LDL1 on the i7, metropolitan lab) per class."""

    @pytest.mark.parametrize("fault_class", sorted(FAULT_CLASSES))
    def test_default_severity_keeps_dram_regulator(self, campaign_factory, fault_class):
        result = campaign_factory(fault_plan=FaultPlan.default((fault_class,)), seed=11)
        detections = CarrierDetector().detect(result)
        assert any(abs(d.frequency - 315e3) < 2e3 for d in detections), (
            f"{fault_class}: DRAM regulator lost"
        )
        robustness = result.robustness
        assert robustness is not None
        # the ledger accounts for every injected fault of exactly this class
        assert set(robustness.faults_by_class()) <= {fault_class}
        assert robustness.n_injected == len(robustness.events)
        for event in robustness.events:
            assert event.fault == fault_class

    def test_full_plan_heavy_damage_still_finds_carrier(self, campaign_factory):
        """Seed 7 corrupts enough captures that the screen excludes most of
        the cohort; the leave-one-out path still finds the 315 kHz carrier
        from the two clean spectra that survive."""
        result = campaign_factory(fault_plan=FaultPlan.default(), seed=7)
        assert result.robustness.n_excluded > 0
        detections = CarrierDetector().detect(result)
        assert any(abs(d.frequency - 315e3) < 2e3 for d in detections)


class TestRobustnessReport:
    def test_text_accounts_for_everything(self, campaign_factory):
        result = campaign_factory(fault_plan=FaultPlan.default(), seed=7)
        text = result.robustness.to_text()
        assert "fault plan:" in text
        assert f"faults injected: {result.robustness.n_injected}" in text
        for index in result.robustness.excluded:
            assert f"capture {index}" in text

    def test_detection_delta_diffs_by_frequency(self):
        class Fake:
            def __init__(self, frequency):
                self.frequency = frequency

        report = RobustnessReport(plan_description="fault plan: test")
        delta = report.record_detection_delta(
            [Fake(315e3), Fake(450e3)], [Fake(315.1e3), Fake(512e3)]
        )
        assert delta.lost == (450e3,)
        assert delta.gained == (512e3,)
        assert "lost" in delta.describe() and "gained" in delta.describe()
        assert "detection delta" in report.to_text()


class TestPipelineAndPersistence:
    def test_run_fase_surfaces_robustness(self, machine_factory):
        machine = machine_factory(span=2e6)
        config = FaseConfig(span_low=0.0, span_high=2e6, fres=100.0, name="pipeline")
        report = run_fase(
            machine,
            pairs=((MicroOp.LDM, MicroOp.LDL1),),
            config=config,
            rng=np.random.default_rng(7),
            fault_plan=FaultPlan.default(),
        )
        activity = report.activities["LDM/LDL1"]
        assert activity.robustness is not None
        assert "robustness:" in report.to_text()

    def test_io_round_trip_preserves_flags(self, campaign_factory, tmp_path):
        from repro import io as campaign_io

        result = campaign_factory(fault_plan=FaultPlan.default(), seed=7)
        assert result.excluded_indices  # the interesting case
        path = tmp_path / "degraded.npz"
        campaign_io.save_campaign(result, path)
        loaded = campaign_io.load_campaign(path)
        assert loaded.excluded_indices == result.excluded_indices
        for original, restored in zip(result.measurements, loaded.measurements):
            assert restored.flagged == original.flagged
            if original.quality is not None:
                assert restored.quality.reasons == original.quality.reasons
        # offline re-analysis excludes the same falt indices
        original_detections = CarrierDetector().detect(result)
        loaded_detections = CarrierDetector().detect(loaded)
        assert [round(d.frequency) for d in loaded_detections] == [
            round(d.frequency) for d in original_detections
        ]


class TestCLI:
    def test_record_with_faults_and_analyze(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "campaign.npz"
        code = main(
            [
                "record",
                "--span-high", "1e6",
                "--faults", "all",
                "--seed", "7",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert main(["analyze", str(out)]) == 0

    def test_unknown_fault_class_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["scan", "--faults", "gremlins"])
