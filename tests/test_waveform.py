"""Time-domain synthesis: envelopes, carriers, AM/FM/sweep waveforms."""

import numpy as np
import pytest

from repro.errors import UnitsError
from repro.signals.waveform import (
    synthesize_alternation_envelope,
    synthesize_am_iq,
    synthesize_carrier_iq,
    synthesize_fm_iq,
    synthesize_spread_spectrum_iq,
)

FS = 1e6


class TestAlternationEnvelope:
    def test_levels_and_mean(self):
        env = synthesize_alternation_envelope(0.01, FS, 10e3, 1.0, 0.0, rng=np.random.default_rng(0))
        assert set(np.unique(env)) <= {0.0, 1.0}
        assert env.mean() == pytest.approx(0.5, abs=0.05)

    def test_duty_cycle_respected(self):
        env = synthesize_alternation_envelope(
            0.02, FS, 5e3, 1.0, 0.0, duty_cycle=0.25, rng=np.random.default_rng(0)
        )
        assert env.mean() == pytest.approx(0.25, abs=0.05)

    def test_period_matches_falt(self):
        env = synthesize_alternation_envelope(0.01, FS, 10e3, 1.0, 0.0, rng=np.random.default_rng(0))
        # count rising edges
        rises = np.sum((env[1:] > 0.5) & (env[:-1] < 0.5))
        assert rises == pytest.approx(0.01 * 10e3, abs=2)

    def test_jitter_varies_periods(self):
        rng = np.random.default_rng(0)
        env = synthesize_alternation_envelope(
            0.05, FS, 10e3, 1.0, 0.0, jitter_fraction=0.05, rng=rng
        )
        rises = np.flatnonzero((env[1:] > 0.5) & (env[:-1] < 0.5))
        periods = np.diff(rises)
        assert periods.std() > 0

    def test_validation(self):
        with pytest.raises(UnitsError):
            synthesize_alternation_envelope(0.01, FS, 0.0, 1.0, 0.0)
        with pytest.raises(UnitsError):
            synthesize_alternation_envelope(0.01, FS, 1e3, 1.0, 0.0, duty_cycle=1.0)
        with pytest.raises(UnitsError):
            synthesize_alternation_envelope(0.0, FS, 1e3, 1.0, 0.0)


class TestCarrierIq:
    def test_unit_magnitude(self):
        iq = synthesize_carrier_iq(0.005, FS, 100e3, rng=np.random.default_rng(0))
        np.testing.assert_allclose(np.abs(iq), 1.0, rtol=1e-9)

    def test_frequency_without_noise(self):
        iq = synthesize_carrier_iq(0.01, FS, 50e3)
        spectrum = np.abs(np.fft.fft(iq))
        freqs = np.fft.fftfreq(len(iq), 1 / FS)
        assert freqs[int(np.argmax(spectrum))] == pytest.approx(50e3, abs=FS / len(iq) * 2)

    def test_phase_noise_spreads_line(self):
        clean = synthesize_carrier_iq(0.02, FS, 50e3, rng=np.random.default_rng(0))
        noisy = synthesize_carrier_iq(0.02, FS, 50e3, line_sigma=2e3, rng=np.random.default_rng(0))
        def peak_fraction(iq):
            s = np.abs(np.fft.fft(iq)) ** 2
            return s.max() / s.sum()
        assert peak_fraction(noisy) < 0.5 * peak_fraction(clean)

    def test_wander_time_validation(self):
        with pytest.raises(UnitsError):
            synthesize_carrier_iq(0.01, FS, 0.0, line_sigma=100.0, wander_time=1e-7)


class TestAmIq:
    def test_sidebands_at_falt(self):
        iq = synthesize_am_iq(
            0.04, FS, 0.0, falt=10e3, amplitude_x=1.0, amplitude_y=0.2,
            rng=np.random.default_rng(0),
        )
        spectrum = np.abs(np.fft.fft(iq)) ** 2
        freqs = np.fft.fftfreq(len(iq), 1 / FS)
        def power_near(f, width=500.0):
            return spectrum[np.abs(freqs - f) < width].sum()
        carrier = power_near(0.0)
        sideband = power_near(10e3)
        noise_ref = power_near(5e3)
        assert sideband > 30 * noise_ref
        assert carrier > sideband

    def test_even_harmonic_suppressed_at_half_duty(self):
        iq = synthesize_am_iq(
            0.04, FS, 0.0, falt=10e3, amplitude_x=1.0, amplitude_y=0.0,
            rng=np.random.default_rng(1),
        )
        spectrum = np.abs(np.fft.fft(iq)) ** 2
        freqs = np.fft.fftfreq(len(iq), 1 / FS)
        def power_near(f, width=500.0):
            return spectrum[np.abs(freqs - f) < width].sum()
        assert power_near(10e3) > 5 * power_near(20e3)
        assert power_near(30e3) > power_near(20e3)


class TestFmIq:
    def test_dwells_at_both_frequencies(self):
        iq = synthesize_fm_iq(0.04, FS, 40e3, 60e3, falt=2e3, rng=np.random.default_rng(0))
        spectrum = np.abs(np.fft.fft(iq)) ** 2
        freqs = np.fft.fftfreq(len(iq), 1 / FS)
        def power_near(f, width=1e3):
            return spectrum[np.abs(freqs - f) < width].sum()
        mid = power_near(50e3)
        assert power_near(40e3) > 3 * mid
        assert power_near(60e3) > 3 * mid

    def test_constant_magnitude(self):
        iq = synthesize_fm_iq(0.01, FS, 40e3, 60e3, falt=2e3, rng=np.random.default_rng(0))
        np.testing.assert_allclose(np.abs(iq), 1.0, rtol=1e-9)


class TestSpreadSpectrumIq:
    def test_occupies_sweep_band(self):
        iq = synthesize_spread_spectrum_iq(0.02, FS, 100e3, 50e3, sweep_period=200e-6)
        spectrum = np.abs(np.fft.fft(iq)) ** 2
        freqs = np.fft.fftfreq(len(iq), 1 / FS)
        in_band = spectrum[(freqs > 45e3) & (freqs < 105e3)].sum()
        assert in_band / spectrum.sum() > 0.9

    def test_sinusoidal_profile_edge_horns(self):
        iq = synthesize_spread_spectrum_iq(0.05, FS, 100e3, 50e3, sweep_period=200e-6)
        spectrum = np.abs(np.fft.fft(iq)) ** 2
        freqs = np.fft.fftfreq(len(iq), 1 / FS)
        def density_near(f, width=2e3):
            mask = np.abs(freqs - f) < width
            return spectrum[mask].sum() / mask.sum()
        center = density_near(75e3)
        assert density_near(99e3) > 1.5 * center
        assert density_near(51e3) > 1.5 * center

    def test_validation(self):
        with pytest.raises(UnitsError):
            synthesize_spread_spectrum_iq(0.01, FS, 100e3, 0.0)
        with pytest.raises(UnitsError):
            synthesize_spread_spectrum_iq(0.01, FS, 100e3, 1e3, profile="bogus")
