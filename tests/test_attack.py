"""At-a-distance power analysis on a modulated carrier (defensive eval)."""

import numpy as np
import pytest

from repro.analysis.attack import (
    attack_carrier,
    decode_bits,
    demodulate_am,
    emit_modulated_carrier,
    square_and_multiply_activity,
)
from repro.errors import DetectionError
from repro.signals.waveform import synthesize_spread_spectrum_iq

FS = 1e6


class TestActivitySynthesis:
    def test_levels_follow_bits(self):
        wave = square_and_multiply_activity((1, 0, 1), 1e-3, FS)
        slot = int(1e-3 * FS)
        assert wave[:slot].mean() == pytest.approx(0.95)
        assert wave[slot : 2 * slot].mean() == pytest.approx(0.45)

    def test_validation(self):
        with pytest.raises(DetectionError):
            square_and_multiply_activity((), 1e-3, FS)
        with pytest.raises(DetectionError):
            square_and_multiply_activity((1,), 1e-9, FS)


class TestDemodulation:
    def test_envelope_recovers_modulation(self):
        rng = np.random.default_rng(0)
        bits = (1, 0, 1, 1, 0)
        activity = square_and_multiply_activity(bits, 2e-3, FS)
        iq = emit_modulated_carrier(activity, FS, 50e3, noise_rms=0.01, rng=rng)
        envelope = demodulate_am(iq, FS, 50e3, bandwidth_hz=1e3)
        slot = int(2e-3 * FS)
        one_level = envelope[slot // 4 : 3 * slot // 4].mean()
        zero_level = envelope[slot + slot // 4 : slot + 3 * slot // 4].mean()
        assert one_level > 1.1 * zero_level

    def test_tracked_demodulation_of_swept_carrier(self):
        """Section 4.3: 'attackers can still track the carrier and use the
        full power of the signal after demodulation.'"""
        duration = 0.02
        sweep_width = 20e3
        top = 100e3
        iq = synthesize_spread_spectrum_iq(duration, FS, top, sweep_width, sweep_period=1e-3)
        # modulate its amplitude with a slow square wave
        n = len(iq)
        envelope_in = 1.0 + 0.5 * np.sign(np.sin(2 * np.pi * 200 * np.arange(n) / FS))
        iq = iq * envelope_in
        # the attacker knows the sweep profile (trackable), so de-sweep:
        t = np.arange(n) / FS
        position = 0.5 - 0.5 * np.cos(2 * np.pi * ((t / 1e-3) % 1.0))
        track = top - sweep_width * position
        tracked = demodulate_am(iq, FS, 0.0, bandwidth_hz=2e3, frequency_track=track)
        untracked = demodulate_am(iq, FS, top - sweep_width / 2, bandwidth_hz=2e3)
        # the tracked envelope reproduces the 3:1 amplitude contrast...
        tracked_contrast = np.percentile(tracked, 90) / np.percentile(tracked, 10)
        assert tracked_contrast > 2.0
        # ...and recovers the signal's full power: a fixed-frequency
        # receiver only catches the sweep as it passes through its band
        assert tracked.mean() > 3.0 * untracked.mean()

    def test_validation(self):
        with pytest.raises(DetectionError):
            demodulate_am(np.ones(4, dtype=complex), FS, 0.0, 1e3)
        with pytest.raises(DetectionError):
            demodulate_am(np.ones(100, dtype=complex), FS, 0.0, FS)
        with pytest.raises(DetectionError):
            demodulate_am(
                np.ones(100, dtype=complex), FS, 0.0, 1e3, frequency_track=np.ones(50)
            )


class TestDecoding:
    def test_clean_bits_decoded(self):
        slot = 1000
        envelope = np.concatenate([np.full(slot, 2.0), np.full(slot, 1.0), np.full(slot, 2.0)])
        bits, _ = decode_bits(envelope, 3)
        assert bits == (1, 0, 1)

    def test_validation(self):
        with pytest.raises(DetectionError):
            decode_bits(np.ones(100), 0)
        with pytest.raises(DetectionError):
            decode_bits(np.ones(10), 8)


class TestEndToEndAttack:
    def test_secret_recovered_at_moderate_noise(self):
        rng = np.random.default_rng(1)
        bits = tuple(int(b) for b in rng.integers(0, 2, size=32))
        result = attack_carrier(bits, rng=np.random.default_rng(2))
        assert result.bit_accuracy == 1.0
        assert result.envelope_snr_db > 6.0

    def test_accuracy_degrades_with_noise(self):
        bits = tuple(int(b) for b in np.random.default_rng(3).integers(0, 2, size=32))
        clean = attack_carrier(bits, noise_rms=0.02, rng=np.random.default_rng(4))
        noisy = attack_carrier(bits, noise_rms=3.0, rng=np.random.default_rng(4))
        assert clean.bit_accuracy >= noisy.bit_accuracy
        assert clean.envelope_snr_db > noisy.envelope_snr_db

    def test_describe(self):
        result = attack_carrier((1, 0, 1, 0), rng=np.random.default_rng(5))
        assert "accuracy" in result.describe()
