"""Emitter base class: rendering, calibration, modulation bookkeeping."""

import pytest

from repro.errors import SystemModelError
from repro.signals.oscillator import CrystalOscillator
from repro.spectrum.grid import FrequencyGrid
from repro.system.emitter import Emitter, UnmodulatedEmitter
from repro.uarch.activity import AlternationActivity
from repro.units import dbm_to_milliwatts

GRID = FrequencyGrid(0.0, 2e6, 50.0)


class LinearEmitter(Emitter):
    """Test double: envelope directly proportional to the activity level."""

    def envelope(self, order, level):
        decay = 0.5 ** (order - 1)
        return decay * (0.2 + 0.8 * level)


def make_emitter(**kwargs):
    defaults = dict(
        name="test",
        oscillator=CrystalOscillator(200e3),
        domain="core",
        fundamental_dbm=-110.0,
        max_harmonics=4,
    )
    defaults.update(kwargs)
    return LinearEmitter(**defaults)


def alternation(level_x=1.0, level_y=0.0, falt=20e3):
    return AlternationActivity(
        falt=falt, levels_x={"core": level_x}, levels_y={"core": level_y}
    )


class TestCalibration:
    def test_fundamental_power_at_reference(self):
        emitter = make_emitter()
        activity = AlternationActivity.constant({"core": emitter.reference_level()})
        power = emitter.render(GRID, activity)
        fundamental = power[GRID.index_of(200e3)]
        assert fundamental == pytest.approx(dbm_to_milliwatts(-110.0), rel=1e-6)

    def test_amplitude_unit_positive(self):
        assert make_emitter().amplitude_unit() > 0


class TestRendering:
    def test_harmonics_present(self):
        power = make_emitter().render(GRID, alternation())
        for order in range(1, 5):
            assert power[GRID.index_of(order * 200e3)] > 0

    def test_max_harmonics_respected(self):
        power = make_emitter(max_harmonics=2).render(GRID, alternation())
        assert power[GRID.index_of(600e3)] == 0.0

    def test_sidebands_present_when_modulated(self):
        power = make_emitter().render(GRID, alternation(falt=20e3))
        assert power[GRID.index_of(220e3)] > 0
        assert power[GRID.index_of(180e3)] > 0

    def test_no_sidebands_when_constant(self):
        activity = AlternationActivity.constant({"core": 0.6})
        power = make_emitter().render(GRID, activity)
        assert power[GRID.index_of(220e3)] == pytest.approx(0.0, abs=1e-30)

    def test_unknown_domain_renders_at_zero_level(self):
        emitter = make_emitter(domain="weird")
        power = emitter.render(GRID, alternation())
        # level 0 -> envelope 0.2: carrier exists, no sidebands
        assert power[GRID.index_of(200e3)] > 0
        assert power[GRID.index_of(220e3)] == pytest.approx(0.0, abs=1e-30)

    def test_out_of_grid_harmonics_skipped(self):
        # falt of 1 kHz keeps every side-band within 5 kHz of its (out of
        # grid) carrier, so nothing lands on this 0-150 kHz grid.
        small = FrequencyGrid(0.0, 150e3, 50.0)
        power = make_emitter().render(small, alternation(falt=1e3))
        assert power.sum() == pytest.approx(0.0, abs=1e-30)

    def test_ingrid_sideband_of_outofgrid_carrier_renders(self):
        """Section 2.3: the carrier itself need not be observable — its
        side-bands can land inside the measured span."""
        small = FrequencyGrid(0.0, 190e3, 50.0)  # carrier at 200 kHz is outside
        power = make_emitter().render(small, alternation(falt=20e3))
        assert power[small.index_of(180e3)] > 0


class TestModulationPredicate:
    def test_modulated_by_contrasting_activity(self):
        assert make_emitter().is_modulated_by(alternation())

    def test_not_modulated_by_constant(self):
        assert not make_emitter().is_modulated_by(AlternationActivity.constant({"core": 0.5}))

    def test_carrier_frequencies(self):
        emitter = make_emitter()
        assert emitter.carrier_frequencies(up_to=500e3) == [200e3, 400e3]


class TestUnmodulatedEmitter:
    def test_flat_in_level(self):
        emitter = UnmodulatedEmitter("spur", CrystalOscillator(100e3), -120.0)
        assert emitter.envelope(1, 0.0) == emitter.envelope(1, 1.0)

    def test_never_modulated(self):
        emitter = UnmodulatedEmitter("spur", CrystalOscillator(100e3), -120.0)
        assert not emitter.is_modulated_by(alternation())

    def test_harmonic_decay(self):
        emitter = UnmodulatedEmitter("spur", CrystalOscillator(100e3), -120.0, harmonic_decay_db=6.0)
        assert emitter.envelope(2, 0.0) == pytest.approx(10 ** (-6.0 / 20.0))


class TestValidation:
    def test_bad_harmonics(self):
        with pytest.raises(SystemModelError):
            make_emitter(max_harmonics=0)

    def test_zero_reference_envelope(self):
        class DeadEmitter(Emitter):
            def envelope(self, order, level):
                return 0.0

        dead = DeadEmitter("dead", CrystalOscillator(1e5), "core", -110.0)
        with pytest.raises(SystemModelError):
            dead.amplitude_unit()
