"""Source classification from cross-activity evidence."""

import pytest

from repro.core.classify import (
    CLOCK,
    CORE_SIDE,
    MEMORY_REFRESH,
    MEMORY_SIDE,
    SHARED,
    SWITCHING_REGULATOR,
    UNIDENTIFIED,
    classify_sources,
)
from repro.core.detect import CarrierDetection
from repro.core.harmonics import group_harmonics
from repro.errors import DetectionError


def det(frequency, dbm=-120.0):
    return CarrierDetection(
        frequency=frequency,
        combined_score=10.0,
        harmonic_scores={1: 10.0},
        magnitude_dbm=dbm,
        modulation_depth=0.3,
    )


def sets_of(*frequencies, dbms=None):
    dbms = dbms or [-120.0] * len(frequencies)
    return group_harmonics([det(f, m) for f, m in zip(frequencies, dbms)])


class TestFingerprint:
    def test_memory_side(self):
        sources = classify_sources({"LDM/LDL1": sets_of(315e3, 630e3), "LDL2/LDL1": []})
        assert len(sources) == 1
        assert sources[0].fingerprint == MEMORY_SIDE

    def test_core_side(self):
        sources = classify_sources({"LDM/LDL1": [], "LDL2/LDL1": sets_of(333e3)})
        assert sources[0].fingerprint == CORE_SIDE

    def test_shared(self):
        sources = classify_sources(
            {"LDM/LDL1": sets_of(300e3), "LDL2/LDL1": sets_of(300e3)}
        )
        assert len(sources) == 1
        assert sources[0].fingerprint == SHARED
        assert set(sources[0].modulating_labels) == {"LDM/LDL1", "LDL2/LDL1"}

    def test_same_source_different_grouping_matched(self):
        """A comb grouped at 512k in one run and 1024k in another is one source."""
        sources = classify_sources(
            {"LDM/LDL1": sets_of(512e3, 1024e3), "LDL2/LDL1": sets_of(1024e3)}
        )
        assert len(sources) == 1

    def test_empty_input_rejected(self):
        with pytest.raises(DetectionError):
            classify_sources({})


class TestMechanism:
    def test_regulator_range(self):
        sources = classify_sources({"LDM/LDL1": sets_of(315e3, 630e3)})
        assert sources[0].mechanism == SWITCHING_REGULATOR

    def test_refresh_by_fundamental_frequency(self):
        sources = classify_sources({"LDM/LDL1": sets_of(128e3, 256e3)})
        assert sources[0].mechanism == MEMORY_REFRESH

    def test_refresh_by_flat_comb(self):
        """A 512 kHz set with many equal-strength harmonics is refresh,
        not a regulator (whose sinc envelope decays)."""
        frequencies = (512e3, 1024e3, 1536e3, 2048e3, 2560e3)
        dbms = [-124.0, -125.0, -126.0, -125.5, -127.0]
        sources = classify_sources({"LDM/LDL1": sets_of(*frequencies, dbms=dbms)})
        assert sources[0].mechanism == MEMORY_REFRESH

    def test_clock_range(self):
        sources = classify_sources({"LDM/LDL1": sets_of(332e6)})
        assert sources[0].mechanism == CLOCK

    def test_unidentified_out_of_ranges(self):
        sources = classify_sources({"LDM/LDL1": sets_of(5e6)})
        assert sources[0].mechanism == UNIDENTIFIED

    def test_describe(self):
        sources = classify_sources({"LDM/LDL1": sets_of(315e3)})
        text = sources[0].describe()
        assert "switching regulator" in text and "LDM/LDL1" in text


class TestI7EndToEnd:
    def test_classification_matches_paper(self, i7_detections, i7_onchip_detections):
        sources = classify_sources(
            {
                "LDM/LDL1": group_harmonics(i7_detections),
                "LDL2/LDL1": group_harmonics(i7_onchip_detections),
            }
        )
        by_fundamental = {round(s.harmonic_set.fundamental / 1e3): s for s in sources}
        assert by_fundamental[225].fingerprint == MEMORY_SIDE
        assert by_fundamental[315].fingerprint == MEMORY_SIDE
        assert by_fundamental[512].fingerprint == MEMORY_SIDE
        assert by_fundamental[512].mechanism == MEMORY_REFRESH
        assert by_fundamental[315].mechanism == SWITCHING_REGULATOR
        core = [k for k in by_fundamental if 330 <= k <= 336]
        assert core and by_fundamental[core[0]].fingerprint == CORE_SIDE
