"""Spectrogram FM confirmation (the paper's Section 4.4 check)."""

import numpy as np
import pytest

from repro.analysis.fm_detect import is_frequency_modulated, spectrogram_frequency_track
from repro.errors import DetectionError
from repro.signals.waveform import synthesize_am_iq, synthesize_fm_iq

FS = 1e6


class TestFrequencyTrack:
    def test_tracks_alternating_frequency(self):
        iq = synthesize_fm_iq(0.05, FS, 50e3, 100e3, falt=1e3, rng=np.random.default_rng(0))
        _, track = spectrogram_frequency_track(iq, FS)
        assert track.min() < 60e3
        assert track.max() > 90e3

    def test_too_short_rejected(self):
        with pytest.raises(DetectionError):
            spectrogram_frequency_track(np.ones(100, dtype=complex), FS)


class TestIsFrequencyModulated:
    def test_fm_signal_detected(self):
        """The AMD constant-on-time regulator case: frequency alternates."""
        iq = synthesize_fm_iq(0.05, FS, 50e3, 100e3, falt=1e3, rng=np.random.default_rng(0))
        assert is_frequency_modulated(iq, FS, min_separation_hz=20e3)

    def test_am_signal_not_fm(self):
        """An AM carrier holds one frequency: the FM check must say no."""
        iq = synthesize_am_iq(
            0.05, FS, 80e3, falt=1e3, amplitude_x=1.0, amplitude_y=0.2,
            rng=np.random.default_rng(0),
        )
        assert not is_frequency_modulated(iq, FS, min_separation_hz=20e3)

    def test_separation_threshold(self):
        iq = synthesize_fm_iq(0.05, FS, 50e3, 54e3, falt=1e3, rng=np.random.default_rng(0))
        # 4 kHz swing < 20 kHz requirement
        assert not is_frequency_modulated(iq, FS, min_separation_hz=20e3)

    def test_validation(self):
        iq = synthesize_fm_iq(0.01, FS, 50e3, 100e3, falt=1e3, rng=np.random.default_rng(0))
        with pytest.raises(DetectionError):
            is_frequency_modulated(iq, FS, min_separation_hz=0.0)
