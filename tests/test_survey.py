"""The process-parallel survey engine: sharding, determinism, worker death.

Two kinds of tests share this file. The real-pipeline tests run actual
(small) campaigns through ``run_survey`` and pin the headline guarantee:
a process-pool run produces detections identical to the inline serial run
for the same plan and seed. The fault-tolerance tests swap in stub shard
functions (module-level, so the pool can pickle them by reference) that
kill their own worker process — ``SIGKILL``, the unhandleable kind — and
assert the engine's bounded-requeue/ledger contract. Stub shards smuggle
their scratch directory through ``config.name``, the one free-form string
that rides the :class:`~repro.survey.ShardSpec` into the worker.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import threading
from pathlib import Path

import pytest

from repro import FaseConfig, MicroOp, run_survey
from repro.cli import main
from repro.core.report import ActivityReport
from repro.errors import CampaignError, SurveyError
from repro.runner import journal_dirname
from repro.survey import (
    DEFAULT_PAIRS,
    SurveyLedger,
    SurveyReport,
    plan_shards,
    run_shard,
)
from repro.survey.report import POOL_BREAK, SHARD_ERROR, WORKER_DEATH
from repro.survey.shards import ShardResult
from repro.telemetry import Recorder, Telemetry, read_jsonl

pytestmark = pytest.mark.survey

#: Small but real: 2000-bin grid, the paper's falt1, a wider f_delta so
#: fres can be coarse.
SMALL = FaseConfig(
    span_low=0.0, span_high=1e6, fres=500.0, falt1=43.3e3, f_delta=2.5e3, name="survey test"
)
MACHINES = ("corei7_desktop", "turionx2_laptop")
ONE_PAIR = ((MicroOp.LDM, MicroOp.LDL1),)


# ----------------------------------------------------------------------
# Stub shard functions (module-level: pool workers pickle them by name).


def _stub_result(spec):
    return ShardResult(
        shard_id=spec.shard_id,
        machine=spec.machine,
        machine_name=spec.machine,
        config_description=spec.config.describe(),
        pair_label="/".join(spec.pair),
        band=spec.band,
        is_memory_pair=True,
        activity=ActivityReport(
            activity_label="/".join(spec.pair), detections=[], harmonic_sets=[]
        ),
        metrics={"counters": {"captures_total": 5}, "gauges": {}, "histograms": {}},
    )


def _is_victim(spec):
    return spec.machine == "corei7_desktop"


def _log_attempt(spec):
    base = Path(spec.config.name)
    with open(base / f"{journal_dirname(spec.shard_id)}.attempts", "a") as handle:
        handle.write("attempt\n")
        handle.flush()
        os.fsync(handle.fileno())


def _stub_shard(spec):
    _log_attempt(spec)
    return _stub_result(spec)


def _kill_always_shard(spec):
    """The victim shard SIGKILLs its worker on every attempt."""
    _log_attempt(spec)
    if _is_victim(spec):
        os.kill(os.getpid(), signal.SIGKILL)
    return _stub_result(spec)


def _kill_once_shard(spec):
    """The victim shard SIGKILLs its worker once, then behaves."""
    _log_attempt(spec)
    if _is_victim(spec):
        sentinel = Path(spec.config.name) / "killed-once"
        if not sentinel.exists():
            sentinel.touch()
            os.kill(os.getpid(), signal.SIGKILL)
    return _stub_result(spec)


def _error_shard(spec):
    """The victim shard raises an ordinary exception in the worker."""
    _log_attempt(spec)
    if _is_victim(spec):
        raise CampaignError(f"synthetic shard error in {spec.shard_id}")
    return _stub_result(spec)


def _attempts(base, shard_id):
    path = Path(base) / f"{journal_dirname(shard_id)}.attempts"
    if not path.exists():
        return 0
    return len(path.read_text().splitlines())


def _scratch_config(base):
    """A tiny config whose ``name`` smuggles the scratch dir to stubs."""
    return FaseConfig(
        span_low=0.0, span_high=1e5, fres=50.0, falt1=43.3e3, f_delta=1e3, name=str(base)
    )


# ----------------------------------------------------------------------
# Work planning.


class TestPlanShards:
    def test_one_shard_per_machine_pair_band(self):
        specs = plan_shards(machines=MACHINES, pairs=DEFAULT_PAIRS, config=SMALL, bands=2)
        assert len(specs) == 2 * 2 * 2
        assert len({spec.shard_id for spec in specs}) == len(specs)

    def test_int_bands_tile_the_span(self):
        specs = plan_shards(machines=("corei7_desktop",), pairs=ONE_PAIR, config=SMALL, bands=4)
        spans = [(spec.config.span_low, spec.config.span_high) for spec in specs]
        assert spans[0][0] == SMALL.span_low
        assert spans[-1][1] == SMALL.span_high
        for (_, high), (low, _) in zip(spans, spans[1:]):
            assert high == low

    def test_shard_configs_force_single_worker(self):
        specs = plan_shards(machines=MACHINES, config=dataclasses.replace(SMALL, n_workers=4))
        assert all(spec.config.n_workers == 1 for spec in specs)

    def test_unknown_machine_rejected(self):
        with pytest.raises(SurveyError, match="unknown preset machines"):
            plan_shards(machines=("bogus_machine",), config=SMALL)

    def test_unknown_fault_class_rejected(self):
        with pytest.raises(SurveyError, match="unknown fault classes"):
            plan_shards(machines=MACHINES, config=SMALL, fault_classes=("not-a-fault",))

    def test_invalid_pair_rejected(self):
        with pytest.raises(SurveyError, match="invalid activity pair"):
            plan_shards(machines=MACHINES, pairs=(("LDM", "BOGUS"),), config=SMALL)

    def test_empty_plan_rejected(self):
        with pytest.raises(SurveyError):
            plan_shards(machines=(), config=SMALL)
        with pytest.raises(SurveyError):
            plan_shards(machines=MACHINES, pairs=(), config=SMALL)

    def test_telemetry_and_checkpoint_paths_derived(self, tmp_path):
        specs = plan_shards(
            machines=("corei7_desktop",),
            pairs=ONE_PAIR,
            config=SMALL,
            checkpoint_dir=tmp_path / "journals",
            telemetry_dir=tmp_path / "telemetry",
        )
        [spec] = specs
        assert spec.checkpoint_dir == str(tmp_path / "journals")
        assert spec.telemetry_jsonl.endswith(".jsonl")
        assert str(tmp_path / "telemetry") in spec.telemetry_jsonl


class TestRunSurveyValidation:
    def test_bad_workers_rejected(self):
        with pytest.raises(SurveyError, match="workers"):
            run_survey(machines=MACHINES, config=SMALL, workers=0)

    def test_bad_retry_budget_rejected(self):
        with pytest.raises(SurveyError, match="max_shard_retries"):
            run_survey(machines=MACHINES, config=SMALL, max_shard_retries=-1)


# ----------------------------------------------------------------------
# The real pipeline: serial == process-parallel, structure, telemetry.


@pytest.fixture(scope="module")
def survey_runs(tmp_path_factory):
    """One serial and one 2-process run of the same small survey plan."""
    base = tmp_path_factory.mktemp("survey-runs")
    recorder = Recorder()
    telemetry = Telemetry(sinks=[recorder])
    serial = run_survey(
        machines=MACHINES,
        config=SMALL,
        seed=3,
        workers=1,
        telemetry_dir=base / "shards",
        telemetry=telemetry,
    )
    parallel = run_survey(machines=MACHINES, config=SMALL, seed=3, workers=2)
    return serial, parallel, recorder, base


class TestSurveyPipeline:
    def test_serial_and_parallel_detections_identical(self, survey_runs):
        serial, parallel, _, _ = survey_runs
        assert sorted(serial.machines) == sorted(parallel.machines)
        for name, fase in serial.machines.items():
            other = parallel.machines[name]
            assert sorted(fase.activities) == sorted(other.activities)
            for label, activity in fase.activities.items():
                assert activity.detections == other.activities[label].detections

    def test_serial_and_parallel_sources_identical(self, survey_runs):
        serial, parallel, _, _ = survey_runs
        for name, fase in serial.machines.items():
            ours = [source.describe() for source in fase.sources]
            theirs = [source.describe() for source in parallel.machines[name].sources]
            assert ours == theirs
        assert [s.describe() for s in serial.comparison] == [
            s.describe() for s in parallel.comparison
        ]

    def test_report_structure(self, survey_runs):
        serial, _, _, _ = survey_runs
        assert isinstance(serial, SurveyReport)
        assert serial.n_shards == len(MACHINES) * len(DEFAULT_PAIRS)
        assert serial.n_completed == serial.n_shards
        assert not serial.ledger.failures
        assert len(serial.machines) == len(MACHINES)
        for fase in serial.machines.values():
            assert sorted(fase.activities) == ["LDL2/LDL1", "LDM/LDL1"]
        # Cross-machine comparison labels machines, not activities.
        machine_names = set(serial.machines)
        for source in serial.comparison:
            assert set(source.modulating_labels) <= machine_names
        text = serial.to_text()
        assert "FASE survey over 2 machine(s)" in text
        assert "all shards completed cleanly" in text

    def test_shard_metrics_merge_into_survey_snapshot(self, survey_runs):
        serial, parallel, _, _ = survey_runs
        # Every shard's campaign contributes its captures to the merged
        # cross-process snapshot; serial and parallel agree exactly.
        captures = serial.telemetry["counters"]["captures_total"]
        assert captures > 0 and captures % serial.n_shards == 0
        assert parallel.telemetry["counters"] == serial.telemetry["counters"]
        assert "stage_score_seconds" in serial.telemetry["histograms"]

    def test_per_shard_jsonl_written(self, survey_runs):
        serial, _, _, base = survey_runs
        files = sorted((base / "shards").glob("*.jsonl"))
        assert len(files) == serial.n_shards
        for path in files:
            records = read_jsonl(path)
            assert any(record.get("kind") == "metrics" for record in records)

    def test_parent_telemetry_sees_lifecycle_and_merged_snapshot(self, survey_runs):
        serial, _, recorder, _ = survey_runs
        finished = [r for r in recorder.records if r.get("name") == "shard-finished"]
        assert len(finished) == serial.n_shards
        merged = [r for r in recorder.records if r.get("name") == "survey-metrics"]
        assert merged
        assert merged[-1]["counters"] == serial.telemetry["counters"]


class TestShardPurity:
    def test_run_shard_is_deterministic(self):
        [spec] = plan_shards(machines=("corei7_desktop",), pairs=ONE_PAIR, config=SMALL, seed=7)
        first = run_shard(spec)
        second = run_shard(spec)
        assert first.activity.detections == second.activity.detections

    def test_unknown_machine_in_spec_rejected(self):
        [spec] = plan_shards(machines=("corei7_desktop",), pairs=ONE_PAIR, config=SMALL)
        bad = dataclasses.replace(spec, machine="bogus")
        with pytest.raises(SurveyError, match="unknown preset machine"):
            run_shard(bad)


# ----------------------------------------------------------------------
# Worker death and shard failure: bounded requeue, ledger, completion.


class TestWorkerDeath:
    def _plan_args(self, base):
        return dict(machines=MACHINES, pairs=ONE_PAIR, config=_scratch_config(base))

    def test_killed_shard_is_abandoned_with_bounded_retries(self, tmp_path):
        retries = 1
        report = run_survey(
            **self._plan_args(tmp_path),
            workers=2,
            max_shard_retries=retries,
            shard_fn=_kill_always_shard,
        )
        [victim_id] = [
            spec.shard_id
            for spec in plan_shards(**self._plan_args(tmp_path))
            if _is_victim(spec)
        ]
        # The survey completed: the healthy shard's machine is present.
        assert report.n_completed == 1
        assert "turionx2_laptop" in report.machines
        # The victim was abandoned into the ledger with a worker-death trail.
        assert victim_id in report.ledger.abandoned
        kinds = {failure.kind for failure in report.ledger.failures_for(victim_id)}
        assert kinds <= {WORKER_DEATH, POOL_BREAK}
        assert WORKER_DEATH in kinds
        charged = [f for f in report.ledger.failures_for(victim_id) if f.charged]
        assert len(charged) == retries + 1
        # Bounded attempts: one shared-pool round plus the isolated retries.
        assert _attempts(tmp_path, victim_id) <= retries + 2

    def test_kill_once_shard_recovers_on_requeue(self, tmp_path):
        report = run_survey(
            **self._plan_args(tmp_path),
            workers=2,
            max_shard_retries=2,
            shard_fn=_kill_once_shard,
        )
        assert report.n_completed == report.n_shards == 2
        assert not report.ledger.abandoned
        [victim_id] = [
            spec.shard_id
            for spec in plan_shards(**self._plan_args(tmp_path))
            if _is_victim(spec)
        ]
        assert report.ledger.requeues.get(victim_id, 0) >= 1
        assert report.ledger.n_failures >= 1
        text = report.to_text()
        assert "survey ledger" in text

    def test_erroring_shard_charged_and_abandoned_serial(self, tmp_path):
        report = run_survey(
            **self._plan_args(tmp_path),
            workers=1,
            max_shard_retries=1,
            shard_fn=_error_shard,
        )
        [victim_id] = [
            spec.shard_id
            for spec in plan_shards(**self._plan_args(tmp_path))
            if _is_victim(spec)
        ]
        assert report.n_completed == 1
        assert victim_id in report.ledger.abandoned
        assert "synthetic shard error" in report.ledger.abandoned[victim_id]
        failures = report.ledger.failures_for(victim_id)
        assert [f.kind for f in failures] == [SHARD_ERROR, SHARD_ERROR]
        assert _attempts(tmp_path, victim_id) == 2  # initial + one requeue

    def test_erroring_shard_charged_in_pool_mode(self, tmp_path):
        report = run_survey(
            **self._plan_args(tmp_path),
            workers=2,
            max_shard_retries=0,
            shard_fn=_error_shard,
        )
        [victim_id] = [
            spec.shard_id
            for spec in plan_shards(**self._plan_args(tmp_path))
            if _is_victim(spec)
        ]
        assert victim_id in report.ledger.abandoned
        assert _attempts(tmp_path, victim_id) == 1


# ----------------------------------------------------------------------
# CLI integration.


class TestSurveyCli:
    def test_survey_command_runs_process_parallel(self, capsys):
        code = main(
            [
                "survey", "--machines", "corei7_desktop,turionx2_laptop",
                "--span-high", "1e6", "--fres", "500", "--f-delta", "2.5e3",
                "--pair", "LDM/LDL1", "--workers", "2", "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FASE survey over 2 machine(s)" in out
        assert "Intel Core i7 desktop" in out
        assert "AMD Turion X2 laptop" in out
        assert "all shards completed cleanly" in out

    def test_unknown_machine_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["survey", "--machines", "bogus_machine"])
        assert "unknown preset machines" in str(excinfo.value)

    def test_config_error_exits_cleanly(self):
        """Regression: a bad span config used to escape ``cmd_survey`` as a
        raw ``CampaignError`` traceback instead of a clean exit message."""
        with pytest.raises(SystemExit) as excinfo:
            main(["survey", "--fres", "1000"])
        assert "f_delta" in str(excinfo.value)

    def test_failure_flushes_telemetry(self, tmp_path):
        """Regression: when the survey died, ``cmd_survey`` dropped the
        telemetry pipeline on the floor; like ``cmd_scan`` it must flush a
        metrics-at-failure snapshot so the JSONL stream explains itself."""
        jsonl = tmp_path / "survey.jsonl"
        with pytest.raises(SystemExit):
            main(
                ["survey", "--machines", "bogus_machine", "--telemetry-jsonl", str(jsonl)]
            )
        records = read_jsonl(jsonl)
        assert any(record.get("name") == "metrics-at-failure" for record in records)

    def test_manifest_flags_round_trip_through_cli(self, tmp_path, capsys):
        """``survey --manifest-dir`` journals the run; re-running with
        ``--resume`` restores it; ``analyze --manifest`` recovers the
        report offline — all without touching run_survey directly."""
        manifest_dir = tmp_path / "manifest"
        argv = [
            "survey", "--machines", "corei7_desktop",
            "--span-high", "1e6", "--fres", "500", "--f-delta", "2.5e3",
            "--pair", "LDM/LDL1", "--seed", "3",
            "--manifest-dir", str(manifest_dir), "--shard-timeout", "60",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "all shards completed cleanly" in first

        # The same plan without --resume must refuse the existing manifest.
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert "pass resume=True" in str(excinfo.value)

        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "(1/1 shards)" in resumed

        assert main(["analyze", "--manifest", str(manifest_dir)]) == 0
        recovered = capsys.readouterr().out
        assert "(1/1 shards)" in recovered
        assert "all shards completed cleanly" in recovered

    def test_bad_shard_timeout_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["survey", "--shard-timeout", "-5"])
        assert "positive number of seconds" in str(excinfo.value)

    def test_analyze_without_input_or_manifest_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze"])
        assert "--manifest DIR" in str(excinfo.value)

    def test_analyze_with_missing_manifest_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--manifest", str(tmp_path / "absent")])
        assert "no survey manifest" in str(excinfo.value)


# ----------------------------------------------------------------------
# _ShardQueue edge cases: the retry-budget boundary, uncharged collateral,
# and how the ledger narrates a mixed-outcome survey.


class TestShardQueueBudgetBoundary:
    def _queue(self, max_shard_retries):
        from repro.survey.engine import _ShardQueue

        specs = plan_shards(machines=("corei7_desktop",), pairs=ONE_PAIR, config=SMALL)
        return _ShardQueue(
            specs,
            max_shard_retries=max_shard_retries,
            ledger=SurveyLedger(),
            telemetry=Telemetry(),
        ), specs[0]

    def test_charge_at_exact_retry_budget_still_requeues(self):
        """The budget is *retries*: failure n is requeued while
        ``n <= max_shard_retries``; only failure max+1 abandons."""
        queue, spec = self._queue(max_shard_retries=2)
        queue.pending.clear()
        queue.charge(spec, WORKER_DEATH, "first death")
        queue.charge(spec, WORKER_DEATH, "second death")
        assert queue.failures[spec.shard_id] == 2
        assert [s.shard_id for s in queue.pending] == [spec.shard_id] * 2
        assert queue.ledger.requeues[spec.shard_id] == 2
        assert spec.shard_id not in queue.ledger.abandoned

    def test_charge_past_retry_budget_abandons(self):
        queue, spec = self._queue(max_shard_retries=2)
        queue.pending.clear()
        for _ in range(3):
            queue.charge(spec, WORKER_DEATH, "death")
        assert queue.failures[spec.shard_id] == 3
        assert len(queue.pending) == 2  # the third charge did not requeue
        assert "after 3 failure(s)" in queue.ledger.abandoned[spec.shard_id]

    def test_zero_retries_abandons_on_first_charge(self):
        queue, spec = self._queue(max_shard_retries=0)
        queue.pending.clear()
        queue.charge(spec, SHARD_ERROR, "boom")
        assert queue.pending == []
        assert spec.shard_id in queue.ledger.abandoned

    def test_uncharged_requeue_then_charged_isolation(self):
        """Pool-break collateral costs nothing; the subsequent isolated
        death is the first *charged* failure — and stays isolated."""
        queue, spec = self._queue(max_shard_retries=1)
        queue.pending.clear()
        queue.requeue_uncharged(spec, "shared pool broke", isolate=True)
        assert queue.failures[spec.shard_id] == 0
        assert [s.shard_id for s in queue.suspects] == [spec.shard_id]
        queue.suspects.clear()
        queue.charge(spec, WORKER_DEATH, "died alone", isolate=True)
        assert queue.failures[spec.shard_id] == 1
        assert [s.shard_id for s in queue.suspects] == [spec.shard_id]
        assert queue.pending == []
        first, second = queue.ledger.failures_for(spec.shard_id)
        assert (first.kind, first.charged, first.failures) == (POOL_BREAK, False, 0)
        assert (second.kind, second.charged, second.failures) == (WORKER_DEATH, True, 1)
        assert "not charged" in first.describe()
        assert "failure 1" in second.describe()


class TestLedgerText:
    def test_mixed_abandonment_kinds_and_planner_decisions(self):
        """One ledger can carry every way a shard ends short of clean
        completion; ``to_text`` must narrate all of them."""
        from repro.survey import BUDGET_EXHAUSTED, EARLY_STOPPED
        from repro.survey.report import POOL_BREAK_CAP

        ledger = SurveyLedger()
        ledger.record_failure("s-dead", WORKER_DEATH, "worker died", failures=2)
        ledger.record_abandoned("s-dead", "worker-death after 2 failure(s)")
        ledger.record_failure(
            "s-capped", POOL_BREAK_CAP, "break budget spent", failures=0, charged=False
        )
        ledger.record_abandoned("s-capped", "pool break budget spent")
        ledger.record_planned("s-stopped", EARLY_STOPPED, "stopped after 3/5 captures")
        ledger.record_planned("s-unfunded", BUDGET_EXHAUSTED, "no budget remained")
        text = ledger.to_text()
        assert "2 shard failure(s)" in text and "2 abandoned" in text
        assert "s-dead: worker-death (failure 2)" in text
        assert "s-capped: pool-break-cap (not charged)" in text
        assert "planner decisions: 2 shard(s)" in text
        assert "early-stopped s-stopped: stopped after 3/5 captures" in text
        assert "budget-exhausted s-unfunded: no budget remained" in text

    def test_clean_ledger_with_planner_decisions(self):
        from repro.survey import EARLY_STOPPED

        ledger = SurveyLedger()
        ledger.record_planned("s", EARLY_STOPPED, "stopped after 2/5 captures")
        text = ledger.to_text()
        assert "all shards completed cleanly" in text
        assert "planner decisions: 1 shard(s)" in text

    def test_cancelled_ledger_headline_is_not_clean(self):
        """A cancellation left shards unrun; the headline may not claim
        every shard completed."""
        ledger = SurveyLedger()
        ledger.record_cancelled("s", "cancelled before start")
        text = ledger.to_text()
        assert "cancelled with 1 shard(s) never run" in text
        assert "completed cleanly" not in text
        assert "cancelled s: cancelled before start" in text

    def test_degradation_kinds_are_narrated(self):
        """A survey that stalled a worker, lost /dev/shm, and then lost
        its manifest must say all three — shard-scoped notes name the
        shard, survey-wide notes say 'survey'."""
        from repro.survey import DURABILITY_DEGRADED, SHARD_STALLED, SHM_FALLBACK

        ledger = SurveyLedger()
        ledger.record_failure(
            "s-hung", SHARD_STALLED, "no heartbeat within the 30s shard deadline; "
            "worker killed", failures=1,
        )
        ledger.record_note(
            "s-shm", SHM_FALLBACK,
            "shared-memory allocation failed; this shard's spectra ride the pickle stream",
        )
        ledger.record_note(
            None, DURABILITY_DEGRADED,
            "appending to the manifest failed; the survey continues non-durably",
        )
        text = ledger.to_text()
        assert "s-hung: shard-stalled (failure 1)" in text
        assert "worker killed" in text
        assert "degradation notes: 2 event(s)" in text
        assert "shm-fallback s-shm: " in text
        assert "durability-degraded survey: " in text
        assert "continues non-durably" in text


# ----------------------------------------------------------------------
# --bands parsing: accepted spellings and the preset-naming error.


class TestParseBands:
    def test_none_and_empty_mean_unbanded(self):
        from repro.survey import parse_bands

        assert parse_bands(None) is None
        assert parse_bands("") is None
        assert parse_bands("  ") is None

    def test_counts_and_presets(self):
        from repro.survey import BAND_PRESETS, parse_bands

        assert parse_bands(8) == 8
        assert parse_bands("8") == 8
        assert parse_bands("quarters") == 4
        assert parse_bands("QUARTERS") == 4
        assert all(parse_bands(name) == n for name, n in BAND_PRESETS.items())

    def test_mhz_ranges(self):
        from repro.survey import parse_bands

        assert parse_bands("0-2,2-4") == ((0.0, 2e6), (2e6, 4e6))
        assert parse_bands("0.5-1.5") == ((0.5e6, 1.5e6),)

    def test_invalid_value_names_presets(self):
        from repro.survey import parse_bands

        with pytest.raises(SurveyError) as excinfo:
            parse_bands("bogus")
        message = str(excinfo.value)
        assert "'bogus'" in message
        for preset in ("full", "halves", "quarters", "eighths", "sixteenths"):
            assert preset in message

    def test_cli_bands_error_exits_cleanly(self):
        """Regression: a bad ``--bands`` used to escape ``cmd_survey`` as
        a raw traceback; it must exit cleanly and name the presets,
        mirroring the ``--pair`` parser's error."""
        with pytest.raises(SystemExit) as excinfo:
            main(["survey", "--bands", "bogus"])
        message = str(excinfo.value)
        assert "invalid bands value" in message
        assert "quarters" in message

    def test_cli_accepts_preset_bands(self, capsys):
        code = main(
            [
                "survey", "--machines", "corei7_desktop",
                "--span-high", "1e6", "--fres", "500", "--f-delta", "2.5e3",
                "--pair", "LDM/LDL1", "--bands", "halves", "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[0-0.5MHz]" in out


# ----------------------------------------------------------------------
# Cooperative cancellation: stop now, lose nothing, resume later.


class TestCancellation:
    def _plan_args(self, base):
        return dict(machines=MACHINES, pairs=ONE_PAIR, config=_scratch_config(base))

    def test_preset_event_cancels_every_shard(self, tmp_path):
        event = threading.Event()
        event.set()
        report = run_survey(
            **self._plan_args(tmp_path), workers=1, shard_fn=_stub_result,
            cancel_event=event,
        )
        assert report.n_completed == 0
        assert report.n_shards == 2
        assert len(report.ledger.cancelled) == 2
        assert not report.ledger.failures  # cancellation is not a failure
        assert "cancelled" in report.to_text()

    def test_preset_event_cancels_in_pool_mode_too(self, tmp_path):
        event = threading.Event()
        event.set()
        report = run_survey(
            **self._plan_args(tmp_path), workers=2, shard_fn=_stub_result,
            cancel_event=event,
        )
        assert report.n_completed == 0
        assert len(report.ledger.cancelled) == 2

    def test_mid_run_cancel_keeps_finished_shards(self, tmp_path):
        """Serial mode runs shards in-process, so a shard body can flip
        the event deterministically between shards."""
        event = threading.Event()

        def first_then_cancel(spec):
            event.set()
            return _stub_result(spec)

        report = run_survey(
            **self._plan_args(tmp_path), workers=1, shard_fn=first_then_cancel,
            cancel_event=event,
        )
        assert report.n_completed == 1  # the in-flight shard finished
        assert len(report.ledger.cancelled) == 1

    def test_resume_after_cancel_reruns_cancelled_shards(self, tmp_path):
        """Regression for the service's cancel/resume path: a cancelled
        survey resumed from its manifest re-runs exactly the cancelled
        shards and converges to the uninterrupted report — stale
        cancellation ledger entries must not survive the resume."""
        golden = run_survey(**self._plan_args(tmp_path), workers=1, seed=3)

        event = threading.Event()

        def first_then_cancel(spec):
            event.set()
            return run_shard(spec)

        manifest_dir = tmp_path / "manifest"
        cancelled = run_survey(
            **self._plan_args(tmp_path), workers=1, seed=3,
            shard_fn=first_then_cancel, cancel_event=event,
            manifest_dir=manifest_dir,
        )
        assert cancelled.n_completed == 1
        assert len(cancelled.ledger.cancelled) == 1

        resumed = run_survey(
            **self._plan_args(tmp_path), workers=1, seed=3,
            manifest_dir=manifest_dir, resume=True,
        )
        assert resumed.n_completed == golden.n_completed == 2
        assert not resumed.ledger.cancelled  # the stale entry is gone
        for name, fase in golden.machines.items():
            other = resumed.machines[name]
            for label, activity in fase.activities.items():
                assert activity.detections == other.activities[label].detections

    def test_cancel_event_incompatible_with_planner(self, tmp_path):
        from repro.survey import AdaptivePlanner

        event = threading.Event()
        with pytest.raises(SurveyError, match="cancel_event"):
            run_survey(
                **self._plan_args(tmp_path),
                planner=AdaptivePlanner(capture_budget=10),
                cancel_event=event,
            )


# ----------------------------------------------------------------------
# The report's JSON codec: the service's wire format.


class TestReportJsonRoundTrip:
    def test_real_report_round_trips_detection_for_detection(self, survey_runs):
        serial, _, _, _ = survey_runs
        revived = SurveyReport.from_json(serial.to_json())
        assert sorted(revived.machines) == sorted(serial.machines)
        for name, fase in serial.machines.items():
            other = revived.machines[name]
            for label, activity in fase.activities.items():
                # Frozen-dataclass equality: every field of every
                # detection survives the JSON round trip exactly.
                assert other.activities[label].detections == activity.detections
                assert [
                    (s.fundamental, [(o, d.frequency) for o, d in s.members])
                    for s in other.activities[label].harmonic_sets
                ] == [
                    (s.fundamental, [(o, d.frequency) for o, d in s.members])
                    for s in activity.harmonic_sets
                ]
            assert [s.describe() for s in other.sources] == [
                s.describe() for s in fase.sources
            ]
        assert [s.describe() for s in revived.comparison] == [
            s.describe() for s in serial.comparison
        ]
        assert revived.n_shards == serial.n_shards
        assert revived.n_completed == serial.n_completed
        assert revived.telemetry == serial.telemetry
        # And the fixed point: dict -> report -> dict is the identity.
        assert revived.to_dict() == serial.to_dict()

    def test_harmonic_members_reference_shared_detections(self, survey_runs):
        """Harmonic-set members serialize as indices into the activity's
        detection list, so the revived objects share identity the way
        the originals do."""
        serial, _, _, _ = survey_runs
        revived = SurveyReport.from_json(serial.to_json())
        for fase in revived.machines.values():
            for activity in fase.activities.values():
                for harmonic_set in activity.harmonic_sets:
                    for _, detection in harmonic_set.members:
                        if detection in activity.detections:
                            index = activity.detections.index(detection)
                            assert activity.detections[index] is detection

    def test_ledger_and_format_survive(self, tmp_path):
        report = run_survey(
            machines=MACHINES, pairs=ONE_PAIR, config=_scratch_config(tmp_path),
            workers=2, max_shard_retries=1, shard_fn=_kill_always_shard,
        )
        assert report.ledger.abandoned  # fixture produced a damaged ledger
        payload = json.loads(report.to_json())
        assert payload["format"] == "fase-survey-report-v1"
        revived = SurveyReport.from_json(report.to_json())
        assert revived.ledger.abandoned == report.ledger.abandoned
        assert revived.ledger.requeues == report.ledger.requeues
        assert [dataclasses.asdict(f) for f in revived.ledger.failures] == [
            dataclasses.asdict(f) for f in report.ledger.failures
        ]
        assert revived.to_dict() == report.to_dict()

    def test_cancelled_shards_survive(self, tmp_path):
        event = threading.Event()
        event.set()
        report = run_survey(
            machines=MACHINES, pairs=ONE_PAIR, config=_scratch_config(tmp_path),
            workers=1, shard_fn=_stub_result, cancel_event=event,
        )
        revived = SurveyReport.from_json(report.to_json())
        assert revived.ledger.cancelled == report.ledger.cancelled
