"""Section 4.4 survey: FASE finds the same signal families on every system."""

import numpy as np
import pytest

from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.core import CarrierDetector
from repro.system import (
    ALL_PRESETS,
    DRAMClockEmitter,
    MemoryRefreshEmitter,
    SwitchingRegulator,
)


@pytest.mark.parametrize("preset_name", sorted(ALL_PRESETS))
def test_low_band_survey_finds_memory_side_signals(preset_name, machine_factory, campaign_factory):
    """On every modeled system the LDM/LDL1 campaign reports the memory
    regulator and the refresh comb (the DRAM clock lives in the high band,
    covered by the campaign-3 tests)."""
    machine = machine_factory(preset=preset_name, span=2e6, kind="quiet")
    result = campaign_factory(
        preset=preset_name, span=2e6, kind="quiet", name="survey window"
    )
    detections = CarrierDetector().detect(result)
    detected = np.array([d.frequency for d in detections])
    assert detected.size > 0

    regulators = [
        e for e in machine.emitters
        if isinstance(e, SwitchingRegulator) and e.is_modulated_by(result.measurements[0].activity)
    ]
    found_regulator = False
    for regulator in regulators:
        for harmonic in regulator.carrier_frequencies(up_to=2e6):
            if np.min(np.abs(detected - harmonic)) < 2e3:
                found_regulator = True
    assert found_regulator, f"{preset_name}: no modulated regulator harmonic detected"

    refresh = next(e for e in machine.emitters if isinstance(e, MemoryRefreshEmitter))
    comb_step = refresh.refresh_frequency * refresh.n_ranks
    found_refresh = any(
        np.min(np.abs(detected - k * comb_step)) < 2e3
        for k in range(1, int(2e6 // comb_step))
    )
    assert found_refresh, f"{preset_name}: refresh comb not detected"


@pytest.mark.parametrize("preset_name", sorted(ALL_PRESETS))
def test_dram_clock_detected_on_every_system(preset_name, machine_factory):
    """The spread-spectrum memory clock is found (as edge carriers) on all
    four systems using campaign-3 style parameters."""
    machine = machine_factory(preset=preset_name, span=1e9, kind="quiet")
    clock = next(e for e in machine.emitters if isinstance(e, DRAMClockEmitter))
    low, high = clock.band_edges()
    config = FaseConfig(
        span_low=low - 3e6,
        span_high=high + 3e6,
        fres=2e3,
        falt1=1800e3,
        f_delta=100e3,
        name="clock window",
    )
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
    result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
    detections = CarrierDetector(min_separation_hz=150e3).detect(result)
    assert detections, f"{preset_name}: DRAM clock not detected"
    for detection in detections:
        near_edge = min(abs(detection.frequency - low), abs(detection.frequency - high))
        assert near_edge < 200e3
