"""Full-stack attack: secret program -> machine waveform -> recovered bits.

Unlike the unit-level attack demo (which synthesizes its own carrier),
this drives the complete Core i7 model: a constant-time square-and-multiply
victim (equal-duration bit slots, power-dependent content — the classic
power-analysis target) runs as a :class:`ProgramActivity`, the
time-domain scene synthesizes everything the antenna would receive around
the CPU core regulator, and the attacker demodulates the 333 kHz carrier
FASE found in Figure 13.
"""

import numpy as np
import pytest

from repro.analysis.attack import demodulate_am
from repro.system import build_environment, corei7_desktop
from repro.system.timedomain import TimeDomainScene
from repro.uarch.isa import MicroOp
from repro.uarch.program import Program, ProgramPhase, ProgramActivity, ProgramSimulator
from repro.uarch.timing import JitterMixture, LatencyModel

CARRIER = 333e3  # the CPU core regulator (Figure 13's finding)
FS = 60e3
SQUARE_ITERS = 120_000  # MUL burst: ~0.21 ms at 3.4 GHz


def constant_time_square_and_multiply(bits):
    """Every bit: a squaring MUL burst, then either a multiply MUL burst
    (bit 1) or an equal-duration NOP filler (bit 0). Timing is constant;
    power is not — the leak is purely through the power side channel."""
    filler_iters = SQUARE_ITERS * 6  # NOP is 1 cycle vs MUL's 6
    phases = []
    for bit in bits:
        phases.append(ProgramPhase(MicroOp.MUL, SQUARE_ITERS))
        if int(bit):
            phases.append(ProgramPhase(MicroOp.MUL, SQUARE_ITERS))
        else:
            phases.append(ProgramPhase(MicroOp.NOP, filler_iters))
    return Program(phases)


@pytest.fixture(scope="module")
def recovered():
    rng = np.random.default_rng(0)
    bits = tuple(int(b) for b in np.random.default_rng(11).integers(0, 2, size=16))
    # deterministic victim timing (no contention): constant-time crypto code
    model = LatencyModel(
        gaussian_sigma_fraction=0.0, jitter=JitterMixture(delays=(), probabilities=())
    )
    simulator = ProgramSimulator(latency_model=model)
    program = constant_time_square_and_multiply(bits)
    activity = ProgramActivity(program, simulator=simulator, label="victim")
    machine = corei7_desktop(
        environment=build_environment(4e6, kind="quiet"), rng=np.random.default_rng(1)
    )
    scene = TimeDomainScene(machine, activity, CARRIER, FS, rng=rng)
    duration = 1.0 / activity.falt  # exactly one pass over the secret
    iq = scene.synthesize(duration)
    envelope = demodulate_am(iq, FS, 0.0, bandwidth_hz=4e3)
    # fixed-duration slots: one per bit, decode the second half of each
    slot = len(envelope) // len(bits)
    means = []
    for i in range(len(bits)):
        second_half = envelope[i * slot + slot // 2 + slot // 8 : (i + 1) * slot - slot // 8]
        means.append(second_half.mean())
    threshold = (max(means) + min(means)) / 2.0
    decoded = tuple(int(m > threshold) for m in means)
    return bits, decoded, np.array(means)


class TestFullStackAttack:
    def test_secret_recovered_from_machine_waveform(self, recovered):
        bits, decoded, _ = recovered
        assert decoded == bits

    def test_power_contrast_visible(self, recovered):
        """1-slots (multiply) draw visibly more regulator envelope than
        0-slots (filler) — the §4.1 at-a-distance power readout."""
        bits, _, means = recovered
        ones = means[np.array(bits) == 1]
        zeros = means[np.array(bits) == 0]
        assert ones.min() > zeros.max()

    def test_secret_has_both_symbols(self, recovered):
        bits, _, _ = recovered
        assert 0 in bits and 1 in bits


class TestProgramActivityAdapter:
    def test_sampled_level_loops_to_duration(self):
        program = Program([ProgramPhase(MicroOp.MUL, 10_000)])
        activity = ProgramActivity(program)
        levels = activity.sampled_level("core", 0.01, 1e5, rng=np.random.default_rng(0))
        assert len(levels) == 1000

    def test_analytic_surface_is_unmodulated(self):
        program = Program([ProgramPhase(MicroOp.MUL, 10_000)])
        activity = ProgramActivity(program)
        assert activity.swing("core") == 0.0
        assert not activity.is_modulating("core")
        assert activity.level_x("core") == activity.level_y("core")
