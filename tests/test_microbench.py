"""The Figure 6 micro-benchmark: masks, calibration, activity summary."""

import numpy as np
import pytest

from repro.errors import CalibrationError, SystemModelError
from repro.uarch.isa import MicroOp
from repro.uarch.microbench import AlternationMicrobenchmark, pointer_mask_for_working_set
from repro.uarch.timing import LatencyModel


class TestPointerMask:
    def test_power_of_two_minus_one(self):
        assert pointer_mask_for_working_set(4096) == 4095
        assert pointer_mask_for_working_set(5000) == 8191
        assert pointer_mask_for_working_set(1) == 0

    def test_invalid(self):
        with pytest.raises(SystemModelError):
            pointer_mask_for_working_set(0)


class TestFromMasks:
    def test_masks_select_ops(self):
        """'They differ only in the mask values in Figure 6.'"""
        bench = AlternationMicrobenchmark.from_masks(
            mask_x=64 * 1024 * 1024 - 1, mask_y=8 * 1024 - 1
        )
        assert bench.op_x == MicroOp.LDM
        assert bench.op_y == MicroOp.LDL1

    def test_l2_mask(self):
        bench = AlternationMicrobenchmark.from_masks(mask_x=128 * 1024 - 1, mask_y=8 * 1024 - 1)
        assert bench.op_x == MicroOp.LDL2


class TestCalibration:
    @pytest.mark.parametrize("falt", [10e3, 43.3e3, 45.3e3, 100e3])
    def test_hits_target_falt(self, falt):
        bench = AlternationMicrobenchmark.calibrated(MicroOp.LDM, MicroOp.LDL1, falt)
        assert bench.achieved_falt() == pytest.approx(falt, rel=0.02)

    def test_half_duty_cycle(self):
        bench = AlternationMicrobenchmark.calibrated(MicroOp.LDM, MicroOp.LDL1, 43.3e3)
        assert bench.achieved_duty_cycle() == pytest.approx(0.5, abs=0.02)

    def test_high_falt_trades_duty_for_frequency(self):
        """At 1.8 MHz an LLC-miss burst is ~4 iterations; the Y count absorbs
        the quantization so falt stays accurate (duty may drift)."""
        bench = AlternationMicrobenchmark.calibrated(MicroOp.LDM, MicroOp.LDL1, 1.8e6)
        assert bench.achieved_falt() == pytest.approx(1.8e6, rel=0.05)

    def test_asymmetric_duty(self):
        bench = AlternationMicrobenchmark.calibrated(
            MicroOp.LDM, MicroOp.LDL1, 20e3, duty_cycle=0.25
        )
        assert bench.achieved_duty_cycle() == pytest.approx(0.25, abs=0.03)

    def test_impossible_falt_raises(self):
        # One LDM iteration already exceeds the period at 20 MHz alternation.
        with pytest.raises(CalibrationError):
            AlternationMicrobenchmark.calibrated(MicroOp.LDM, MicroOp.LDM, 20e6)

    def test_bad_inputs(self):
        with pytest.raises(CalibrationError):
            AlternationMicrobenchmark.calibrated(MicroOp.ADD, MicroOp.ADD, -1.0)
        with pytest.raises(CalibrationError):
            AlternationMicrobenchmark.calibrated(MicroOp.ADD, MicroOp.ADD, 1e3, duty_cycle=0.0)


class TestActivity:
    def test_activity_reflects_ops(self):
        bench = AlternationMicrobenchmark.calibrated(MicroOp.LDM, MicroOp.LDL1, 43.3e3)
        activity = bench.activity()
        assert activity.label == "LDM/LDL1"
        assert activity.is_modulating("dram_power")
        assert not activity.is_modulating("core")

    def test_jitter_fraction_small_but_positive(self):
        bench = AlternationMicrobenchmark.calibrated(MicroOp.LDM, MicroOp.LDL1, 43.3e3)
        assert 0.0 < bench.period_jitter_fraction() < 0.05

    def test_simulated_periods_match_analytics(self):
        bench = AlternationMicrobenchmark.calibrated(MicroOp.LDM, MicroOp.LDL1, 43.3e3)
        periods = bench.simulate_periods(20000, rng=np.random.default_rng(0))
        assert periods.mean() == pytest.approx(1.0 / bench.achieved_falt(), rel=0.01)
        assert periods.std() * bench.achieved_falt() == pytest.approx(
            bench.period_jitter_fraction(), rel=0.15
        )

    def test_simulated_periods_multimodal(self):
        """The contention mixture creates secondary execution-time modes."""
        model = LatencyModel()
        bench = AlternationMicrobenchmark.calibrated(
            MicroOp.LDL1, MicroOp.LDL1, 43.3e3, latency_model=model
        )
        periods = bench.simulate_periods(50000, rng=np.random.default_rng(0))
        base = np.median(periods)
        mode_delay = model.jitter.delays[0] / model.cpu_frequency
        near_secondary = np.abs(periods - (base + mode_delay)) < mode_delay / 4
        assert near_secondary.mean() > 0.01


class TestValidation:
    def test_counts_positive(self):
        with pytest.raises(SystemModelError):
            AlternationMicrobenchmark(MicroOp.ADD, MicroOp.ADD, 0, 10)

    def test_ops_typed(self):
        with pytest.raises(SystemModelError):
            AlternationMicrobenchmark("LDM", MicroOp.ADD, 1, 1)

    def test_repr_mentions_ops(self):
        bench = AlternationMicrobenchmark(MicroOp.LDM, MicroOp.LDL1, 10, 100)
        assert "LDM" in repr(bench)
