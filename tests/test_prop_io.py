"""Properties of the campaign archive round trip.

Two guarantees of the zero-copy read path, driven by Hypothesis instead
of hand-picked fixtures:

* **byte identity** — a campaign saved, lazily (mmap) loaded, and saved
  again produces a byte-identical archive, for both the compressed and
  the uncompressed (``ZIP_STORED``) format. Deterministic writes plus an
  exact read path mean re-archiving can never silently perturb data;
* **laziness** — a ``lazy=True`` load reads *zero* trace bytes until a
  measurement's ``power_mw`` is touched, and touching one trace
  materializes only that trace.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FaseConfig
from repro.io import LazySpectrumTrace, load_campaign, save_campaign
from repro.core.campaign import CampaignMeasurement, CampaignResult
from repro.spectrum.trace import SpectrumTrace
from repro.uarch.activity import AlternationActivity
from repro.uarch.isa import MicroOp, activity_levels

CONFIG = FaseConfig(
    span_low=0.0, span_high=1e5, fres=500.0, falt1=43.3e3, f_delta=2.5e3, name="prop io"
)
N_BINS = CONFIG.grid().n_bins
FALTS = CONFIG.falts()


def make_campaign(seed, flagged):
    """A synthetic but valid campaign: one trace per falt, seeded power."""
    rng = np.random.default_rng(seed)
    grid = CONFIG.grid()
    result = CampaignResult(
        config=CONFIG, machine_name="prop machine", activity_label="LDM/LDL1"
    )
    for i, falt in enumerate(FALTS):
        power = rng.uniform(0.0, 1e3, size=N_BINS)
        activity = AlternationActivity(
            falt=falt,
            levels_x=activity_levels(MicroOp.LDM),
            levels_y=activity_levels(MicroOp.LDL1),
            label=f"act {i}",
        )
        result.measurements.append(
            CampaignMeasurement(
                falt=falt,
                activity=activity,
                trace=SpectrumTrace(grid, power, label=f"trace {i}"),
                flagged=flagged[i % len(flagged)],
            )
        )
    return result.validate()


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    flagged=st.lists(st.booleans(), min_size=1, max_size=len(FALTS)),
    compress=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_save_lazy_load_resave_is_byte_identical(seed, flagged, compress):
    root = Path(tempfile.mkdtemp(prefix="fase-prop-io-"))
    try:
        campaign = make_campaign(seed, flagged)
        first = save_campaign(campaign, root / "first.npz", compress=compress)
        loaded = load_campaign(first, lazy=True)
        second = save_campaign(loaded, root / "second.npz", compress=compress)
        assert first.read_bytes() == second.read_bytes()
    finally:
        shutil.rmtree(root, ignore_errors=True)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    compress=st.booleans(),
    touch=st.integers(min_value=0, max_value=len(FALTS) - 1),
)
@settings(max_examples=20, deadline=None)
def test_lazy_load_reads_no_trace_bytes_until_touched(seed, compress, touch):
    root = Path(tempfile.mkdtemp(prefix="fase-prop-io-"))
    try:
        campaign = make_campaign(seed, [False])
        path = save_campaign(campaign, root / "campaign.npz", compress=compress)
        loaded = load_campaign(path, lazy=True)
        traces = [m.trace for m in loaded.measurements]
        assert all(isinstance(t, LazySpectrumTrace) for t in traces)
        loader = traces[0]._loader
        assert loader.loads == 0
        assert not any(t.materialized for t in traces)
        # Touch exactly one trace: exactly one materialization, exact bytes.
        power = traces[touch].power_mw
        assert loader.loads == 1
        assert traces[touch].materialized
        assert np.array_equal(power, campaign.measurements[touch].trace.power_mw)
        assert all(not t.materialized for i, t in enumerate(traces) if i != touch)
        # Touching again is free (cached), not a re-read.
        traces[touch].power_mw
        assert loader.loads == 1
    finally:
        shutil.rmtree(root, ignore_errors=True)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_uncompressed_lazy_traces_are_memory_mapped(seed):
    root = Path(tempfile.mkdtemp(prefix="fase-prop-io-"))
    try:
        campaign = make_campaign(seed, [False])
        path = save_campaign(campaign, root / "campaign.npz", compress=False)
        loaded = load_campaign(path, lazy=True)
        trace = loaded.measurements[0].trace
        assert isinstance(trace.power_mw, np.memmap)
        assert np.array_equal(trace.power_mw, campaign.measurements[0].trace.power_mw)
    finally:
        shutil.rmtree(root, ignore_errors=True)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    compress=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_lazy_and_eager_loads_agree(seed, compress):
    root = Path(tempfile.mkdtemp(prefix="fase-prop-io-"))
    try:
        campaign = make_campaign(seed, [True, False])
        path = save_campaign(campaign, root / "campaign.npz", compress=compress)
        eager = load_campaign(path)
        lazy = load_campaign(path, lazy=True)
        assert len(eager.measurements) == len(lazy.measurements)
        for ours, theirs in zip(eager.measurements, lazy.measurements):
            assert ours.falt == theirs.falt
            assert ours.flagged == theirs.flagged
            assert ours.trace.label == theirs.trace.label
            assert np.array_equal(ours.trace.power_mw, theirs.trace.power_mw)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_lazy_load_shape_mismatch_surfaces_at_first_touch(tmp_path):
    """Damage inside a trace member of a lazy load raises the archive
    error at materialization time, naming the member."""
    import json
    import zipfile

    from repro.errors import CampaignArchiveError
    from repro.io import _write_npz_deterministic

    campaign = make_campaign(7, [False])
    path = save_campaign(campaign, tmp_path / "damaged.npz", compress=False)
    # Rewrite trace_0 with the wrong number of bins, metadata untouched.
    with zipfile.ZipFile(path) as zf:
        members = {
            name[: -len(".npy")]: np.load(zf.open(name))
            if name != "metadata.npy"
            else json.loads(str(np.load(zf.open(name))))
            for name in zf.namelist()
        }
    arrays = {name: value for name, value in members.items() if name != "metadata"}
    arrays["metadata"] = json.dumps(members["metadata"])
    arrays["trace_0"] = np.ones(N_BINS // 2)
    with open(path, "wb") as handle:
        _write_npz_deterministic(handle, arrays, compress=False)
    lazy = load_campaign(path, lazy=True)  # loads fine: presence only
    with pytest.raises(CampaignArchiveError, match="trace_0"):
        lazy.measurements[0].trace.power_mw
