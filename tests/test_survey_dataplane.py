"""The survey's zero-copy data plane: shared-memory blocks, leak-freedom,
and the survey-wide pool-break cap.

The contract under test is ownership: the parent allocates every
``/dev/shm`` segment before a worker exists and releases every one on
every exit path — normal completion, shard errors, worker ``SIGKILL``
mid-write, pool breaks, and the pool-break cap. The kill stubs here
attach to their block and write into it *before* dying, so the SIGKILL
tests exercise death mid-publish, not just death.

Like ``test_survey.py``, stub shard functions are module-level (pool
workers pickle them by reference) and smuggle their scratch directory
through ``config.name``.
"""

from __future__ import annotations

import glob
import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro import FaseConfig, MicroOp, run_survey
from repro.core.report import ActivityReport
from repro.errors import SurveyError
from repro.runner import journal_dirname
from repro.survey import (
    POOL_BREAK_CAP,
    ShardResult,
    SpectraMeta,
    TraceArena,
    plan_shards,
)
from repro.survey.dataplane import attached, publish_campaign

pytestmark = pytest.mark.survey

MACHINES = ("corei7_desktop", "turionx2_laptop")
ONE_PAIR = ((MicroOp.LDM, MicroOp.LDL1),)

#: Small but real: 200-bin grid, the paper's falt1.
SMALL = FaseConfig(
    span_low=0.0, span_high=1e5, fres=500.0, falt1=43.3e3, f_delta=2.5e3, name="dataplane test"
)


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture
def shm_before():
    """Snapshot of /dev/shm before the test; assert no new segments after."""
    before = _shm_segments()
    yield before
    assert _shm_segments() - before == set()


def _scratch_config(base):
    return FaseConfig(
        span_low=0.0, span_high=1e5, fres=500.0, falt1=43.3e3, f_delta=2.5e3, name=str(base)
    )


def _is_victim(spec):
    return spec.machine == "corei7_desktop"


def _log_attempt(spec):
    base = Path(spec.config.name)
    with open(base / f"{journal_dirname(spec.shard_id)}.attempts", "a") as handle:
        handle.write("attempt\n")
        handle.flush()
        os.fsync(handle.fileno())


def _stub_result(spec, spectra=None):
    return ShardResult(
        shard_id=spec.shard_id,
        machine=spec.machine,
        machine_name=spec.machine,
        config_description=spec.config.describe(),
        pair_label="/".join(spec.pair),
        band=spec.band,
        is_memory_pair=True,
        activity=ActivityReport(
            activity_label="/".join(spec.pair), detections=[], harmonic_sets=[]
        ),
        metrics={"counters": {}, "gauges": {}, "histograms": {}},
        spectra=spectra,
    )


def _publish_rows(spec, fill):
    """Write one row into the shard's block; the mid-write half of a kill."""
    with attached(spec.block) as rows:
        rows[0, :] = fill
    return SpectraMeta(n_rows=1, falts=(1.0,), labels=("row0",), flagged=(False,))


def _kill_mid_write_shard(spec):
    """The victim attaches, writes into its block, then SIGKILLs itself."""
    _log_attempt(spec)
    spectra = None
    if spec.block is not None:
        spectra = _publish_rows(spec, fill=7.0)
    if _is_victim(spec):
        os.kill(os.getpid(), signal.SIGKILL)
    return _stub_result(spec, spectra=spectra)


def _kill_always_shard(spec):
    """Every corei7 shard SIGKILLs its worker on every attempt."""
    _log_attempt(spec)
    if _is_victim(spec):
        os.kill(os.getpid(), signal.SIGKILL)
    return _stub_result(spec)


def _error_with_block_shard(spec):
    """The victim raises after writing into its block."""
    _log_attempt(spec)
    spectra = _publish_rows(spec, fill=3.0) if spec.block is not None else None
    if _is_victim(spec):
        raise SurveyError(f"synthetic failure in {spec.shard_id}")
    return _stub_result(spec, spectra=spectra)


# ----------------------------------------------------------------------
# The arena itself.


class TestTraceArena:
    def test_allocate_view_release(self, shm_before):
        with TraceArena() as arena:
            ref = arena.allocate("s1", capacity=3, n_bins=8)
            assert ref.capacity == 3 and ref.n_bins == 8 and ref.nbytes == 3 * 8 * 8
            view = arena.view("s1")
            view[:] = 2.5
            assert np.array_equal(arena.view("s1", 2), np.full((2, 8), 2.5))
            assert "s1" in arena and len(arena) == 1
        # Released by the context manager; release again is a no-op.
        assert len(arena) == 0
        arena.release()

    def test_double_allocate_rejected(self, shm_before):
        with TraceArena() as arena:
            arena.allocate("s1", capacity=1, n_bins=4)
            with pytest.raises(SurveyError, match="already has"):
                arena.allocate("s1", capacity=1, n_bins=4)

    def test_bad_dimensions_rejected(self, shm_before):
        with TraceArena() as arena:
            with pytest.raises(SurveyError, match="positive dimensions"):
                arena.allocate("s1", capacity=0, n_bins=4)
            with pytest.raises(SurveyError, match="positive dimensions"):
                arena.allocate("s2", capacity=4, n_bins=-1)

    def test_view_bounds_checked(self, shm_before):
        with TraceArena() as arena:
            arena.allocate("s1", capacity=2, n_bins=4)
            with pytest.raises(SurveyError, match="at most 2 rows"):
                arena.view("s1", 3)

    def test_worker_writes_are_visible_to_parent(self, shm_before):
        with TraceArena() as arena:
            ref = arena.allocate("s1", capacity=2, n_bins=4)
            with attached(ref) as rows:
                rows[1, :] = 9.0
            assert np.array_equal(arena.view("s1")[1], np.full(4, 9.0))

    def test_attach_after_release_raises(self, shm_before):
        arena = TraceArena()
        ref = arena.allocate("s1", capacity=1, n_bins=4)
        arena.release()
        with pytest.raises(SurveyError, match="is gone"):
            with attached(ref):
                pass

    def test_garbage_collection_releases_blocks(self, shm_before):
        arena = TraceArena()
        arena.allocate("s1", capacity=1, n_bins=4)
        del arena  # weakref.finalize backstop: no leak without release()

    def test_publish_overflow_rejected(self, shm_before):
        class _FakeResult:
            measurements = [object()] * 3

        with TraceArena() as arena:
            ref = arena.allocate("s1", capacity=2, n_bins=4)
            with pytest.raises(SurveyError, match="holds 2 rows"):
                publish_campaign(ref, _FakeResult())


# ----------------------------------------------------------------------
# keep_spectra end to end: real pipeline, purity, zero-copy views.


class TestKeepSpectra:
    def test_spectra_views_and_purity(self, shm_before):
        kwargs = dict(machines=MACHINES, pairs=ONE_PAIR, config=SMALL, seed=3)
        serial = run_survey(workers=1, keep_spectra=True, **kwargs)
        parallel = run_survey(workers=2, keep_spectra=True, **kwargs)
        try:
            assert sorted(serial.spectra) == sorted(parallel.spectra)
            assert len(serial.spectra) == serial.n_shards
            for shard_id, ours in serial.spectra.items():
                theirs = parallel.spectra[shard_id]
                # Purity extends to the published spectra, byte for byte.
                assert np.array_equal(ours.power, theirs.power)
                assert ours.falts == theirs.falts
                assert ours.n_rows == len(SMALL.falts())
                assert ours.power.shape == (ours.n_rows, SMALL.grid().n_bins)
                assert (ours.power >= 0).all()
                trace = ours.trace(0)
                assert trace.power_mw.shape == (SMALL.grid().n_bins,)
                assert trace.label == ours.labels[0]
            # Detections agree too (the PR 5 purity invariant still holds).
            for name, fase in serial.machines.items():
                for label, activity in fase.activities.items():
                    assert (
                        activity.detections
                        == parallel.machines[name].activities[label].detections
                    )
        finally:
            serial.close()
            parallel.close()

    def test_report_close_is_idempotent_and_context_managed(self, shm_before):
        with run_survey(
            machines=MACHINES[:1], pairs=ONE_PAIR, config=SMALL, workers=2, keep_spectra=True
        ) as report:
            assert report.spectra
        assert not report.spectra and report.arena is None
        report.close()

    def test_without_keep_spectra_nothing_is_published(self, shm_before):
        report = run_survey(
            machines=MACHINES[:1], pairs=ONE_PAIR, config=SMALL, workers=2
        )
        assert report.spectra == {} and report.arena is None
        report.close()  # no-op


# ----------------------------------------------------------------------
# Leak-freedom on every failure path.


class TestNoLeaks:
    def _plan_args(self, base):
        return dict(machines=MACHINES, pairs=ONE_PAIR, config=_scratch_config(base))

    def test_sigkill_mid_write_leaks_nothing(self, tmp_path, shm_before):
        """A worker SIGKILLed *while holding an attachment it just wrote
        through* must not leak its shard's segment: the parent owns it and
        releases it with the report."""
        report = run_survey(
            **self._plan_args(tmp_path),
            workers=2,
            max_shard_retries=1,
            keep_spectra=True,
            shard_fn=_kill_mid_write_shard,
        )
        [victim_id] = [
            s.shard_id for s in plan_shards(**self._plan_args(tmp_path)) if _is_victim(s)
        ]
        assert victim_id in report.ledger.abandoned
        # The healthy shard's mid-write rows still made it across.
        survivor = next(iter(report.spectra.values()))
        assert np.array_equal(survivor.power[0], np.full(survivor.power.shape[1], 7.0))
        report.close()

    def test_sigkill_without_spectra_leaks_nothing(self, tmp_path, shm_before):
        report = run_survey(
            **self._plan_args(tmp_path),
            workers=2,
            max_shard_retries=1,
            keep_spectra=True,
            shard_fn=_kill_always_shard,
        )
        report.close()

    def test_shard_error_leaks_nothing(self, tmp_path, shm_before):
        report = run_survey(
            **self._plan_args(tmp_path),
            workers=2,
            max_shard_retries=0,
            keep_spectra=True,
            shard_fn=_error_with_block_shard,
        )
        [victim_id] = [
            s.shard_id for s in plan_shards(**self._plan_args(tmp_path)) if _is_victim(s)
        ]
        assert victim_id in report.ledger.abandoned
        report.close()

    def test_engine_exception_leaks_nothing(self, tmp_path, shm_before):
        # plan_shards succeeds, allocation succeeds, then the pool-worker
        # validation path raises before any round runs.
        with pytest.raises(SurveyError, match="max_shard_retries"):
            run_survey(
                **self._plan_args(tmp_path),
                workers=2,
                max_shard_retries=-1,
                keep_spectra=True,
            )


# ----------------------------------------------------------------------
# The survey-wide pool-break cap.


class TestPoolBreakCap:
    def _plan_args(self, base):
        # 4 bands x 2 machines = 8 shards, 4 of them kill-always victims:
        # each shared round that meets a victim breaks the pool again.
        return dict(
            machines=MACHINES, pairs=ONE_PAIR, config=_scratch_config(base), bands=4
        )

    def test_repeated_breaks_hit_the_cap(self, tmp_path, shm_before):
        report = run_survey(
            **self._plan_args(tmp_path),
            workers=2,
            max_shard_retries=0,
            max_pool_breaks=1,
            shard_fn=_kill_always_shard,
        )
        # The survey terminated (bounded SIGKILLs) and the budget overrun
        # is ledgered with its own kind, distinct from worker-death.
        capped = [f for f in report.ledger.failures if f.kind == POOL_BREAK_CAP]
        assert capped, report.ledger.to_text()
        assert all(not f.charged for f in capped)
        for failure in capped:
            assert failure.shard_id in report.ledger.abandoned
            assert "break budget" in report.ledger.abandoned[failure.shard_id]
        # Every shard is accounted for: completed or abandoned.
        assert report.n_completed + len(report.ledger.abandoned) == report.n_shards
        # Victims never exceed their per-shard attempt bound even while
        # the cap is being hit (1 shared + retries+1 isolated).
        for spec in plan_shards(**self._plan_args(tmp_path)):
            path = Path(tmp_path) / f"{journal_dirname(spec.shard_id)}.attempts"
            attempts = len(path.read_text().splitlines()) if path.exists() else 0
            assert attempts <= 2

    def test_generous_cap_never_engages(self, tmp_path, shm_before):
        report = run_survey(
            **self._plan_args(tmp_path),
            workers=2,
            max_shard_retries=1,
            max_pool_breaks=100,
            shard_fn=_kill_always_shard,
        )
        assert not any(f.kind == POOL_BREAK_CAP for f in report.ledger.failures)
        # All healthy shards completed; all victims were charged out.
        assert report.n_completed == 4
        assert len(report.ledger.abandoned) == 4

    def test_bad_cap_rejected(self):
        with pytest.raises(SurveyError, match="max_pool_breaks"):
            run_survey(machines=MACHINES, config=SMALL, max_pool_breaks=-1)
