"""Near-field localization: finding the component behind a carrier."""

import pytest

from repro.analysis.localization import NearFieldProbe, localize_carrier
from repro.errors import SystemModelError
from repro.uarch.activity import AlternationActivity
from repro.uarch.isa import MicroOp, activity_levels


def steady_memory_activity():
    return AlternationActivity.constant(activity_levels(MicroOp.LDM), label="LDM steady")


def idle_activity():
    return AlternationActivity.constant(activity_levels(MicroOp.LDL1), label="idle-ish")


class TestProbe:
    def test_power_rises_toward_source(self, i7):
        probe = NearFieldProbe(i7)
        regulator = i7.emitter_named("DRAM DIMM regulator")
        at_source = probe.measure(regulator.position, 315e3, steady_memory_activity())
        far_away = probe.measure((2.0, 28.0), 315e3, steady_memory_activity())
        assert at_source > 100 * far_away

    def test_validation(self, i7):
        with pytest.raises(SystemModelError):
            NearFieldProbe(i7, standoff_cm=0.0)


class TestLocalizeCarrier:
    def test_regulator_localizes_to_dimm_area(self, i7):
        """Section 4.1: 'the signal was strongest near the high power MOSFET
        switches and power inductors that supply power to the main memory
        DIMMs'."""
        result = localize_carrier(i7, 315e3, steady_memory_activity())
        assert result.source_name == "DRAM DIMM regulator"

    def test_refresh_localizes_to_dimms(self, i7):
        """Section 4.2: 'this signal was strongest near the memory DIMMs'
        (probe at the idle system where the refresh comb is strongest)."""
        result = localize_carrier(i7, 512e3, idle_activity())
        assert result.source_name == "memory refresh"

    def test_near_field_reveals_128k_gcd(self, i7):
        """The paper's key clue: close to the memory, 'many additional
        harmonics with a greatest common divisor of 128 kHz' appear."""
        probe = NearFieldProbe(i7)
        refresh = i7.emitter_named("memory refresh")
        # The weak 128k sub-harmonic is measurable right at the DIMMs...
        at_dimms = probe.measure(refresh.position, 128e3, idle_activity(), band_halfwidth=1e3)
        # ...but vanishes into nothing a board-length away.
        far = probe.measure((2.0, 28.0), 128e3, idle_activity(), band_halfwidth=1e3)
        assert at_dimms > 1e4 * max(far, 1e-30)

    def test_core_regulator_localizes_to_cpu(self, i7):
        core_activity = AlternationActivity.constant(
            activity_levels(MicroOp.LDL2), label="on-chip"
        )
        result = localize_carrier(i7, 333e3, core_activity)
        assert result.source_name == "CPU core regulator"

    def test_result_describe(self, i7):
        result = localize_carrier(i7, 315e3, steady_memory_activity())
        assert "DRAM DIMM regulator" in result.describe()

    def test_power_map_shape(self, i7):
        result = localize_carrier(i7, 315e3, steady_memory_activity(), scan_step_cm=5.0)
        assert result.power_map.shape == (len(result.scan_y), len(result.scan_x))

    def test_validation(self, i7):
        with pytest.raises(SystemModelError):
            localize_carrier(i7, 315e3, steady_memory_activity(), scan_step_cm=0.0)
