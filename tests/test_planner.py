"""Planner tier: the budgeted adaptive survey matches exhaustive results.

The acceptance bar for the adaptive scheduler is *equivalence with a
measured saving*: on the paper-figure fixtures (Figure 11's i7 LDM/LDL1
sweep and Figure 17's cross-machine comparison) the adaptive survey must
detect the **identical carrier set** — same frequencies, same source
grouping, same cross-machine attribution — as the exhaustive survey of
the same shard plan, while spending at most half of its full-resolution
captures. Every capture is reconciled (used + saved == exhaustive) and
every shard the planner cut short carries a ledger decision saying why.
"""

from __future__ import annotations

import math

import pytest

from repro import FaseConfig, MicroOp, run_survey
from repro.errors import SurveyError
from repro.survey import (
    AdaptivePlanner,
    BUDGET_EXHAUSTED,
    CaptureBudget,
    EARLY_STOPPED,
    PRESCAN_SKIPPED,
    plan_shards,
    prescan_shard,
    run_shard,
    run_shard_adaptive,
)
from repro.telemetry import Recorder, Telemetry

pytestmark = pytest.mark.planner

#: Figure 11 fixture: the i7's 0-4 MHz LDM/LDL1 sweep, 32 bands. Eight
#: bands carry carriers (225/315/450/1024/1575/2048/2560/3072 kHz); a
#: budget of 64 of the 160 exhaustive captures funds them all with room
#: for a few empty-band early stops.
FIG11 = FaseConfig(
    span_low=0.0, span_high=4e6, fres=50.0, falt1=43.3e3, f_delta=0.5e3,
    name="fig11 planner fixture",
)
FIG11_PLAN = dict(
    machines=("corei7_desktop",),
    pairs=((MicroOp.LDM, MicroOp.LDL1),),
    config=FIG11,
    bands=32,
    seed=5,
)
FIG11_BUDGET = 64

#: Figure 17 fixture: desktop + laptop over 0-1.2 MHz, 8 bands each.
#: Half the 16 shards are populated; a budget of 40 of the 80 exhaustive
#: captures covers exactly those.
FIG17 = FaseConfig(
    span_low=0.0, span_high=1.2e6, fres=50.0, falt1=43.3e3, f_delta=0.5e3,
    name="fig17 planner fixture",
)
FIG17_PLAN = dict(
    machines=("corei7_desktop", "turionx2_laptop"),
    pairs=((MicroOp.LDM, MicroOp.LDL1),),
    config=FIG17,
    bands=8,
    seed=11,
)
FIG17_BUDGET = 40


def carrier_map(report):
    """machine -> sorted detected carrier frequencies across all bands."""
    return {
        name: sorted(
            round(det.frequency, 3)
            for activity in fase.activities.values()
            for det in activity.detections
        )
        for name, fase in report.machines.items()
    }


def source_map(report):
    """machine -> the classified source grouping, as describe() strings."""
    return {
        name: [source.describe() for source in fase.sources]
        for name, fase in report.machines.items()
    }


@pytest.fixture(scope="module")
def fig11_runs():
    exhaustive = run_survey(**FIG11_PLAN)
    recorder = Recorder()
    telemetry = Telemetry(sinks=[recorder])
    adaptive = run_survey(
        **FIG11_PLAN,
        planner=AdaptivePlanner(capture_budget=FIG11_BUDGET),
        telemetry=telemetry,
    )
    return exhaustive, adaptive, recorder, telemetry


@pytest.fixture(scope="module")
def fig17_runs():
    exhaustive = run_survey(**FIG17_PLAN)
    adaptive = run_survey(
        **FIG17_PLAN, planner=AdaptivePlanner(capture_budget=FIG17_BUDGET)
    )
    return exhaustive, adaptive


class TestFig11Equivalence:
    def test_identical_carrier_set(self, fig11_runs):
        exhaustive, adaptive, _, _ = fig11_runs
        assert carrier_map(adaptive) == carrier_map(exhaustive)
        assert any(carrier_map(exhaustive).values())  # fixture is non-trivial

    def test_identical_source_grouping(self, fig11_runs):
        exhaustive, adaptive, _, _ = fig11_runs
        assert source_map(adaptive) == source_map(exhaustive)

    def test_uses_at_most_half_the_captures(self, fig11_runs):
        _, adaptive, _, _ = fig11_runs
        acc = adaptive.planning
        assert acc.exhaustive_captures == 160
        assert acc.captures_used <= 0.5 * acc.exhaustive_captures

    def test_accounting_identity(self, fig11_runs):
        _, adaptive, _, _ = fig11_runs
        acc = adaptive.planning
        assert acc.captures_used + acc.captures_saved == acc.exhaustive_captures
        assert acc.n_shards == 32
        assert (
            acc.n_completed + acc.n_early_stopped + acc.n_budget_exhausted
            + acc.n_prescan_skipped
            == acc.n_shards
        )
        assert adaptive.n_completed == acc.n_completed + acc.n_early_stopped

    def test_ledger_carries_both_abandonment_kinds(self, fig11_runs):
        _, adaptive, _, _ = fig11_runs
        kinds = {kind for kind, _ in adaptive.ledger.planned.values()}
        assert EARLY_STOPPED in kinds
        assert BUDGET_EXHAUSTED in kinds
        text = adaptive.to_text()
        assert "adaptive plan:" in text
        assert "planner decisions:" in text

    def test_early_stops_are_sound(self, fig11_runs):
        """Every early-stopped shard, run exhaustively, detects nothing."""
        _, adaptive, _, _ = fig11_runs
        stopped = [
            shard_id
            for shard_id, (kind, _) in adaptive.ledger.planned.items()
            if kind == EARLY_STOPPED
        ]
        assert stopped
        specs = {spec.shard_id: spec for spec in plan_shards(**FIG11_PLAN)}
        for shard_id in stopped:
            truth = run_shard(specs[shard_id])
            assert truth.activity.detections == []

    def test_planner_telemetry(self, fig11_runs):
        _, adaptive, recorder, telemetry = fig11_runs
        acc = adaptive.planning
        spans = {r.get("name") for r in recorder.records if r.get("kind") == "span"}
        assert {"plan_survey", "prescan-sweep", "plan-round"} <= spans
        counters = telemetry.snapshot().to_dict()["counters"]
        assert counters["captures_saved"] == acc.captures_saved
        assert counters["prescan_captures"] == acc.prescan_captures
        assert counters["shards_early_stopped"] == acc.n_early_stopped
        assert counters["shards_budget_exhausted"] == acc.n_budget_exhausted
        # The shard-side registries merge the used-capture story into the
        # report's snapshot: every funded shard counted what it spent.
        assert adaptive.telemetry["counters"]["captures_total"] == acc.captures_used


class TestFig17CrossMachine:
    def test_identical_carrier_set_per_machine(self, fig17_runs):
        exhaustive, adaptive = fig17_runs
        assert carrier_map(adaptive) == carrier_map(exhaustive)
        assert len(adaptive.machines) == 2

    def test_identical_cross_machine_comparison(self, fig17_runs):
        exhaustive, adaptive = fig17_runs
        ours = [source.describe() for source in adaptive.comparison]
        theirs = [source.describe() for source in exhaustive.comparison]
        assert ours == theirs
        assert ours  # the fixture shares at least one source across machines

    def test_uses_at_most_half_the_captures(self, fig17_runs):
        _, adaptive = fig17_runs
        acc = adaptive.planning
        assert acc.exhaustive_captures == 80
        assert acc.captures_used <= 0.5 * acc.exhaustive_captures
        assert acc.captures_used + acc.captures_saved == acc.exhaustive_captures


class TestAdaptiveShard:
    def test_completed_shard_matches_run_shard(self):
        """A funded shard that runs to completion reproduces run_shard
        byte-for-byte: same serial analyzer stream, same detections."""
        specs = plan_shards(**FIG11_PLAN)
        populated = specs[2]  # 0.25-0.375MHz: carrier at 315 kHz
        truth = run_shard(populated)
        assert truth.activity.detections  # guard: the band is populated
        outcome = run_shard_adaptive(populated, AdaptivePlanner())
        assert outcome.status == "completed"
        assert outcome.captures_used == outcome.captures_total
        assert outcome.result.activity.detections == truth.activity.detections
        assert outcome.result.pair_label == truth.pair_label

    def test_early_stopped_shard_reports_zero_detections(self):
        specs = plan_shards(**FIG11_PLAN)
        empty = next(
            spec for spec in specs if spec.band == "2.125-2.25MHz"
        )  # early-stops after 3 captures on this fixture
        outcome = run_shard_adaptive(empty, AdaptivePlanner())
        assert outcome.status == EARLY_STOPPED
        assert outcome.captures_used < outcome.captures_total
        assert outcome.result.activity.detections == []
        assert outcome.evidence_bound < AdaptivePlanner().stop_threshold_decades

    def test_adaptive_shard_rejects_durable_and_faulty_specs(self):
        import dataclasses

        [spec] = plan_shards(
            machines=("corei7_desktop",),
            pairs=((MicroOp.LDM, MicroOp.LDL1),),
            config=FIG11,
        )
        faulty = dataclasses.replace(spec, fault_classes=("drop",))
        with pytest.raises(SurveyError, match="clean, non-durable"):
            run_shard_adaptive(faulty, AdaptivePlanner())

    @pytest.mark.parametrize(
        "field, value",
        [
            ("fault_classes", ("drop",)),
            ("checkpoint_dir", "/tmp/journals"),
            ("keep_spectra", True),
        ],
    )
    def test_adaptive_shard_gate_names_the_triggering_flag(self, field, value):
        """Regression: the gate used to check ``fault_classes`` but blame
        a generic message; each incompatible spec field must be named so
        the caller knows which flag to drop."""
        import dataclasses

        [spec] = plan_shards(
            machines=("corei7_desktop",),
            pairs=((MicroOp.LDM, MicroOp.LDL1),),
            config=FIG11,
        )
        bad = dataclasses.replace(spec, **{field: value})
        with pytest.raises(SurveyError, match=f"incompatible with: {field}"):
            run_shard_adaptive(bad, AdaptivePlanner())

    def test_adaptive_shard_gate_lists_every_active_flag(self):
        import dataclasses

        [spec] = plan_shards(
            machines=("corei7_desktop",),
            pairs=((MicroOp.LDM, MicroOp.LDL1),),
            config=FIG11,
        )
        bad = dataclasses.replace(
            spec, fault_classes=("drop",), checkpoint_dir="/tmp/j", keep_spectra=True
        )
        with pytest.raises(
            SurveyError,
            match="incompatible with: fault_classes, checkpoint_dir, keep_spectra",
        ):
            run_shard_adaptive(bad, AdaptivePlanner())


class TestPrescan:
    def test_prescan_is_pure_and_separate_from_full_run(self):
        """The pre-scan is deterministic and consumes its own streams:
        the full shard result is identical with or without a pre-scan
        having run first in the same process."""
        [spec] = plan_shards(
            machines=("corei7_desktop",),
            pairs=((MicroOp.LDM, MicroOp.LDL1),),
            config=FIG17,
            seed=11,
        )
        planner = AdaptivePlanner()
        first = prescan_shard(spec, planner)
        second = prescan_shard(spec, planner)
        assert first.promise == second.promise
        assert first.evidence == second.evidence
        truth = run_shard(spec)
        after = run_shard(spec)
        assert truth.activity.detections == after.activity.detections

    def test_prescan_config_is_coarser_and_valid(self):
        planner = AdaptivePlanner()
        pre = planner.prescan_config(FIG11)
        assert pre.fres == 5 * FIG11.fres
        assert pre.f_delta >= 4 * pre.fres
        assert "prescan" in pre.name
        # Dwell-based cost: coarser RBW means cheaper captures.
        assert planner.prescan_cost(FIG11) < FIG11.n_alternations

    def test_prescan_rbw_must_be_coarser(self):
        planner = AdaptivePlanner(prescan_rbw=10.0)
        with pytest.raises(SurveyError, match="finer than the campaign RBW"):
            planner.prescan_config(FIG11)


class TestPlannerConfig:
    def test_budget_fraction_and_absolute(self):
        specs = plan_shards(**FIG11_PLAN)
        assert AdaptivePlanner(capture_budget=0.5).budget_for(specs).total == 80
        assert AdaptivePlanner(capture_budget=64).budget_for(specs).total == 64
        assert math.isinf(AdaptivePlanner().budget_for(specs).total)

    def test_machine_quotas(self):
        budget = CaptureBudget(total=100, per_machine={"a": 5})
        assert budget.can_fund("a", 5)
        assert not budget.can_fund("a", 6)
        budget.charge("a", 5)
        assert not budget.can_fund("a", 1)
        assert budget.can_fund("b", 95)
        budget.refund("a", 3)
        assert budget.can_fund("a", 3)

    def test_overcharge_rejected(self):
        budget = CaptureBudget(total=4)
        with pytest.raises(SurveyError, match="cannot charge"):
            budget.charge("a", 5)

    def test_bad_planner_parameters_rejected(self):
        with pytest.raises(SurveyError, match="capture_budget"):
            AdaptivePlanner(capture_budget=0)
        with pytest.raises(SurveyError, match="min_prefix_falts"):
            AdaptivePlanner(min_prefix_falts=1)

    def test_min_promise_skips_shards(self):
        report = run_survey(
            **FIG17_PLAN, planner=AdaptivePlanner(min_promise=1e9)
        )
        acc = report.planning
        assert acc.n_prescan_skipped == acc.n_shards
        assert acc.captures_used == 0
        assert acc.captures_saved == acc.exhaustive_captures
        kinds = {kind for kind, _ in report.ledger.planned.values()}
        assert kinds == {PRESCAN_SKIPPED}

    def test_planner_incompatible_with_faults_and_durability(self, tmp_path):
        planner = AdaptivePlanner()
        with pytest.raises(SurveyError, match="incompatible with: fault_classes"):
            run_survey(
                **FIG17_PLAN, planner=planner, fault_classes="all"
            )
        with pytest.raises(SurveyError, match="checkpoint_dir"):
            run_survey(**FIG17_PLAN, planner=planner, checkpoint_dir=tmp_path)
        with pytest.raises(SurveyError, match="keep_spectra"):
            run_survey(**FIG17_PLAN, planner=planner, keep_spectra=True)
