"""Cache hierarchy: mask -> working set -> level -> micro-op mapping."""

import pytest

from repro.errors import SystemModelError
from repro.uarch.cache import CacheHierarchy, CacheLevel, default_hierarchy
from repro.uarch.isa import MicroOp


class TestCacheLevel:
    def test_validation(self):
        with pytest.raises(SystemModelError):
            CacheLevel("L1", 0, 4.0)
        with pytest.raises(SystemModelError):
            CacheLevel("L1", 1024, 0.0)


class TestHierarchy:
    def test_default_is_desktop_class(self):
        h = default_hierarchy()
        assert [l.name for l in h.levels] == ["L1", "L2", "LLC"]

    def test_ordering_enforced(self):
        with pytest.raises(SystemModelError):
            CacheHierarchy([CacheLevel("L1", 64 * 1024, 4.0), CacheLevel("L2", 32 * 1024, 12.0)])
        with pytest.raises(SystemModelError):
            CacheHierarchy([CacheLevel("L1", 32 * 1024, 12.0), CacheLevel("L2", 64 * 1024, 4.0)])

    def test_dram_latency_must_exceed_llc(self):
        with pytest.raises(SystemModelError):
            CacheHierarchy([CacheLevel("L1", 1024, 4.0)], dram_latency_cycles=2.0)

    def test_empty_rejected(self):
        with pytest.raises(SystemModelError):
            CacheHierarchy([])


class TestLevelForWorkingSet:
    def test_small_set_hits_l1(self):
        assert default_hierarchy().level_for_working_set(4 * 1024) == "L1"

    def test_medium_set_hits_l2(self):
        assert default_hierarchy().level_for_working_set(64 * 1024) == "L2"

    def test_large_set_hits_llc(self):
        assert default_hierarchy().level_for_working_set(1024 * 1024) == "LLC"

    def test_huge_set_misses_to_dram(self):
        assert default_hierarchy().level_for_working_set(64 * 1024 * 1024) == "DRAM"

    def test_half_capacity_rule(self):
        """A set must fit in half the capacity to count as resident."""
        h = default_hierarchy()
        assert h.level_for_working_set(16 * 1024) == "L1"
        assert h.level_for_working_set(17 * 1024) == "L2"

    def test_invalid_size(self):
        with pytest.raises(SystemModelError):
            default_hierarchy().level_for_working_set(0)


class TestOpMapping:
    def test_mask_only_configuration(self):
        """The paper's point: the same code walks L1/L2/DRAM purely by mask."""
        h = default_hierarchy()
        assert h.op_for_working_set(8 * 1024) == MicroOp.LDL1
        assert h.op_for_working_set(100 * 1024) == MicroOp.LDL2
        assert h.op_for_working_set(256 * 1024 * 1024) == MicroOp.LDM

    def test_llc_sized_set_behaves_onchip(self):
        assert default_hierarchy().op_for_working_set(2 * 1024 * 1024) == MicroOp.LDL2

    def test_latency_lookup(self):
        h = default_hierarchy()
        assert h.latency_for_level("L1") == 5.0
        assert h.latency_for_level("DRAM") == 210.0
        with pytest.raises(SystemModelError):
            h.latency_for_level("L9")
