"""Properties of the adaptive planner, driven by Hypothesis.

Three families of invariants back the planner's correctness argument:

* **Accounting and purity** — for any (seed, budget) the adaptive
  survey reconciles every capture (used + saved == exhaustive), is a
  pure function of its inputs, and is invariant to the worker count.
* **Early-stop soundness** — the stop rule only ever kills a campaign
  whose final Eq. 1 evidence could not have crossed the detection
  threshold. Synthetic bounded-ripple traces make the per-falt cap a
  theorem (ripple ``<= 10^(cap/n)`` bounds every Eq. 2 factor), so a
  stop verdict *provably* implies a below-threshold finish; a planted
  moving side-band must conversely never be stopped.
* **Budget ledger** — any interleaving of charges and refunds keeps the
  :class:`CaptureBudget` meter consistent and never funds past a quota.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FaseConfig, FrequencyGrid, MicroOp, SpectrumTrace, run_survey
from repro.core import IncrementalEvidence
from repro.core.campaign import CampaignMeasurement
from repro.errors import SurveyError
from repro.survey import AdaptivePlanner, CaptureBudget

from tests.test_planner import carrier_map, source_map

pytestmark = pytest.mark.planner

#: A deliberately tiny survey (2 shards x 5 captures on ~100-bin grids)
#: so Hypothesis can afford full adaptive runs per example.
TINY = FaseConfig(
    span_low=0.0, span_high=1e5, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
    name="planner property fixture",
)
TINY_PLAN = dict(
    machines=("corei7_desktop",),
    pairs=((MicroOp.LDM, MicroOp.LDL1),),
    config=TINY,
    bands=2,
)
TINY_EXHAUSTIVE = 10  # 2 shards x 5 falts


def adaptive_fingerprint(report):
    """Everything an equivalence check cares about, as plain data."""
    acc = report.planning
    return (
        carrier_map(report),
        source_map(report),
        acc.captures_used,
        acc.captures_saved,
        acc.prescan_captures,
        acc.n_completed,
        acc.n_early_stopped,
        acc.n_budget_exhausted,
        acc.n_prescan_skipped,
        sorted(report.ledger.planned.items()),
    )


class TestAccountingAndPurity:
    @given(
        seed=st.integers(min_value=0, max_value=2**16 - 1),
        budget=st.integers(min_value=2, max_value=TINY_EXHAUSTIVE + 3),
    )
    @settings(max_examples=8, deadline=None)
    def test_identity_and_purity(self, seed, budget):
        planner = AdaptivePlanner(capture_budget=budget)
        first = run_survey(**TINY_PLAN, seed=seed, planner=planner)
        acc = first.planning
        assert acc.exhaustive_captures == TINY_EXHAUSTIVE
        assert acc.captures_used + acc.captures_saved == acc.exhaustive_captures
        assert 0 <= acc.captures_used <= min(budget, TINY_EXHAUSTIVE)
        assert (
            acc.n_completed + acc.n_early_stopped + acc.n_budget_exhausted
            + acc.n_prescan_skipped
            == acc.n_shards
        )
        again = run_survey(**TINY_PLAN, seed=seed, planner=planner)
        assert adaptive_fingerprint(again) == adaptive_fingerprint(first)

    @given(seed=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=3, deadline=None)
    def test_workers_invariance(self, seed):
        planner = AdaptivePlanner(capture_budget=TINY_EXHAUSTIVE // 2)
        serial = run_survey(**TINY_PLAN, seed=seed, planner=planner, workers=1)
        pooled = run_survey(**TINY_PLAN, seed=seed, planner=planner, workers=2)
        assert adaptive_fingerprint(pooled) == adaptive_fingerprint(serial)


# ----------------------------------------------------------------------
# Early-stop soundness on synthetic traces with a *provable* per-falt cap.

GRID = FrequencyGrid(0.0, 1e5, 500.0)
BASE_MW = 1e-9


def synthetic_config(n_total):
    return FaseConfig(
        span_low=0.0, span_high=1e5, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
        n_alternations=n_total, name="synthetic soundness",
    )


def measurement(falt, power):
    trace = SpectrumTrace(GRID, power, label=f"synthetic falt={falt:g}Hz")
    return CampaignMeasurement(falt=falt, activity=None, trace=trace)


def replay(measurements, planner, n_total, config):
    """Feed captures through the real evidence/stop machinery.

    Returns ``(stopped_at, bound_at_stop, final_evidence)`` where the
    final evidence is what the campaign would have reached had the stop
    been ignored and every capture taken.
    """
    evidence = IncrementalEvidence(config, "synthetic", "pair")
    stopped_at = bound_at_stop = None
    for m in measurements:
        evidence.add(m)
        stop, bound = planner.should_stop(evidence, n_total)
        if stop and stopped_at is None:
            stopped_at, bound_at_stop = evidence.n_captures, bound
    return stopped_at, bound_at_stop, evidence.max_evidence_decades


class TestEarlyStopSoundness:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_total=st.integers(min_value=3, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_stop_implies_below_threshold_finish(self, seed, n_total):
        """Bounded ripple makes the per-falt cap airtight: every Eq. 2
        factor of a trace set with powers in [p, R*p] lies in [1/R, R],
        so with R = 10^(cap/n) the full product moves at most ``cap``
        decades past any prefix — a stop verdict is then a proof."""
        planner = AdaptivePlanner()
        config = synthetic_config(n_total)
        rng = np.random.default_rng(seed)
        ripple = 10.0 ** (planner.per_falt_cap_decades / n_total)
        measurements = [
            measurement(falt, BASE_MW * ripple ** rng.random(GRID.n_bins))
            for falt in config.falts()
        ]
        stopped_at, bound, final = replay(measurements, planner, n_total, config)
        assert stopped_at is not None  # noise this flat cannot survive the rule
        assert stopped_at < n_total
        assert final <= bound + 1e-9
        assert final < planner.stop_threshold_decades

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_moving_sideband_is_never_stopped(self, seed):
        """A planted side-band that tracks falt (the paper's Eq. 1
        signature of a real carrier) must never trip the stop rule, and
        must finish above the detection threshold."""
        planner = AdaptivePlanner()
        n_total = 5
        config = synthetic_config(n_total)
        rng = np.random.default_rng(seed)
        carrier = 10e3
        measurements = []
        for falt in config.falts():
            power = BASE_MW * (1.0 + 0.1 * rng.random(GRID.n_bins))
            spike_bin = int(round((carrier + falt - GRID.start) / GRID.resolution))
            power[spike_bin] = BASE_MW * 1e6
            measurements.append(measurement(falt, power))
        stopped_at, _, final = replay(measurements, planner, n_total, config)
        assert stopped_at is None
        assert final > planner.stop_threshold_decades


# ----------------------------------------------------------------------
# The budget meter under arbitrary charge/refund interleavings.

budget_ops = st.lists(
    st.tuples(
        st.sampled_from(["charge", "refund"]),
        st.sampled_from(["desktop", "laptop"]),
        st.integers(min_value=1, max_value=8),
    ),
    max_size=40,
)


class TestCaptureBudgetInvariants:
    @given(ops=budget_ops, total=st.integers(min_value=5, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_meter_stays_consistent(self, ops, total):
        quota = {"laptop": total // 2}
        budget = CaptureBudget(total=float(total), per_machine=dict(quota))
        for op, machine, n in ops:
            if op == "charge":
                if budget.can_fund(machine, n):
                    budget.charge(machine, n)
                else:
                    with pytest.raises(SurveyError):
                        budget.charge(machine, n)
            else:
                budget.refund(machine, min(n, budget.spent(machine)))
            # The meter can never overdraw, go negative, or disagree
            # with itself about what remains.
            assert 0.0 <= budget.spent() <= total
            assert budget.spent("laptop") <= quota["laptop"]
            assert budget.remaining() == total - budget.spent()
            assert (
                budget.remaining("laptop")
                == quota["laptop"] - budget.spent("laptop")
            )
            assert budget.remaining("desktop") == math.inf

    def test_unlimited_budget_funds_anything(self):
        budget = CaptureBudget()
        assert budget.can_fund("any", 10**9)
        budget.charge("any", 10**9)
        assert budget.remaining() == math.inf
