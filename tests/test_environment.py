"""RF environment: radio stations, spurs, metropolitan preset."""

import numpy as np
import pytest

from repro.errors import SystemModelError
from repro.spectrum.grid import FrequencyGrid
from repro.system.environment import (
    AM_BAND_HIGH,
    AM_BAND_LOW,
    AMRadioStation,
    RFEnvironment,
    SpuriousToneField,
    ToneInterferer,
)
from repro.units import dbm_to_milliwatts

GRID = FrequencyGrid(0.0, 2e6, 50.0)


class TestToneInterferer:
    def test_single_bin(self):
        tone = ToneInterferer(600e3, -100.0)
        power = tone.mean_power(GRID)
        assert power[GRID.index_of(600e3)] == pytest.approx(dbm_to_milliwatts(-100.0))
        assert np.count_nonzero(power) == 1

    def test_validation(self):
        with pytest.raises(SystemModelError):
            ToneInterferer(0.0, -100.0)


class TestAMRadioStation:
    def test_carrier_plus_audio_sidebands(self):
        station = AMRadioStation(1000e3, -95.0, audio_bandwidth=5e3, sideband_fraction=0.3)
        power = station.mean_power(GRID)
        carrier_bin = GRID.index_of(1000e3)
        assert power[carrier_bin] > 0
        # audio energy within +-5 kHz
        near = power[GRID.index_of(997e3) : GRID.index_of(1003e3)].sum()
        assert near == pytest.approx(dbm_to_milliwatts(-95.0), rel=0.15)

    def test_total_power_calibrated(self):
        station = AMRadioStation(800e3, -90.0)
        assert station.mean_power(GRID).sum() == pytest.approx(dbm_to_milliwatts(-90.0), rel=0.01)

    def test_static_mean(self):
        """A station's mean spectrum never changes: the property FASE's
        normalization relies on to reject it."""
        station = AMRadioStation(800e3, -90.0)
        np.testing.assert_array_equal(station.mean_power(GRID), station.mean_power(GRID))

    def test_validation(self):
        with pytest.raises(SystemModelError):
            AMRadioStation(800e3, -90.0, sideband_fraction=1.0)
        with pytest.raises(SystemModelError):
            AMRadioStation(800e3, -90.0, audio_bandwidth=0.0)


class TestSpuriousToneField:
    def test_count_and_determinism(self):
        field = SpuriousToneField(0.0, 2e6, 50, rng=np.random.default_rng(4))
        power = field.mean_power(GRID)
        assert 40 <= np.count_nonzero(power) <= 50  # some tones may share bins
        again = SpuriousToneField(0.0, 2e6, 50, rng=np.random.default_rng(4)).mean_power(GRID)
        np.testing.assert_array_equal(power, again)

    def test_validation(self):
        with pytest.raises(SystemModelError):
            SpuriousToneField(2e6, 1e6, 10)
        with pytest.raises(SystemModelError):
            SpuriousToneField(0.0, 1e6, -1)

    def test_default_rng_reproducible(self):
        """Regression: ``rng=None`` used to pull fresh process entropy, so
        two fields built without an explicit stream could never reproduce
        each other (or a rerun of the same script). The default is now a
        fixed labeled stream."""
        a = SpuriousToneField(0.0, 2e6, 50)
        b = SpuriousToneField(0.0, 2e6, 50)
        np.testing.assert_array_equal(a.frequencies, b.frequencies)
        np.testing.assert_array_equal(a.powers_mw, b.powers_mw)

    def test_zero_tones_is_silent(self):
        field = SpuriousToneField(0.0, 2e6, 0)
        np.testing.assert_array_equal(field.mean_power(GRID), 0.0)


class TestRFEnvironment:
    def test_quiet_has_only_thermal_floor(self):
        env = RFEnvironment.quiet()
        power = env.mean_power(GRID)
        assert np.ptp(power) == pytest.approx(0.0, abs=1e-30)

    def test_metropolitan_populates_am_band(self):
        env = RFEnvironment.metropolitan(2e6, rng=np.random.default_rng(0))
        power = env.mean_power(GRID)
        lo, hi = GRID.index_of(AM_BAND_LOW), GRID.index_of(min(AM_BAND_HIGH, 2e6 - 50))
        floor = np.median(power)
        stations = np.sum(power[lo:hi] > 100 * floor)
        assert stations > 10

    def test_metropolitan_deterministic(self):
        a = RFEnvironment.metropolitan(2e6, rng=np.random.default_rng(0)).mean_power(GRID)
        b = RFEnvironment.metropolitan(2e6, rng=np.random.default_rng(0)).mean_power(GRID)
        np.testing.assert_array_equal(a, b)

    def test_sum_of_sources_and_noise(self):
        tone = ToneInterferer(500e3, -100.0)
        env = RFEnvironment(sources=[tone])
        power = env.mean_power(GRID)
        np.testing.assert_allclose(power, tone.mean_power(GRID))

    def test_small_span_no_am_band(self):
        env = RFEnvironment.metropolitan(100e3, rng=np.random.default_rng(0))
        grid = FrequencyGrid(0.0, 100e3, 50.0)
        assert env.mean_power(grid).sum() > 0  # noise + spurs only, no crash

    def test_invalid_span(self):
        with pytest.raises(SystemModelError):
            RFEnvironment.metropolitan(0.0)

    def test_empty_source_list_without_noise_is_silent(self):
        env = RFEnvironment(sources=(), noise=None)
        np.testing.assert_array_equal(env.mean_power(GRID), 0.0)

    def test_metropolitan_with_all_source_counts_zero(self):
        """Source counts of zero leave only the noise landscape — still a
        valid environment with power in every bin."""
        env = RFEnvironment.metropolitan(
            2e6,
            rng=np.random.default_rng(0),
            n_am_stations=0,
            n_spurious=0,
            n_longwave=0,
        )
        power = env.mean_power(GRID)
        assert np.all(power > 0)
        # above the pink-noise knee the floor is smooth: no narrowband
        # sources anywhere (the 1/f rise legitimately dominates near DC)
        tail = power[GRID.index_of(100e3) :]
        assert tail.max() < 100 * np.median(tail)

    def test_metropolitan_span_below_every_band(self):
        """A span under the long-wave band (60 kHz) skips stations and
        long-wave transmitters entirely without crashing."""
        env = RFEnvironment.metropolitan(50e3, rng=np.random.default_rng(0))
        grid = FrequencyGrid(0.0, 50e3, 50.0)
        assert env.mean_power(grid).sum() > 0
