"""AM side-band synthesis and FM dwell lines (Section 2.1 spectra)."""

import numpy as np
import pytest

from repro.errors import UnitsError
from repro.signals.modulation import (
    alternation_coefficients,
    am_sideband_lines,
    fm_dwell_lines,
    modulation_depth_from_levels,
)


class TestAlternationCoefficients:
    def test_half_duty_no_even_harmonics(self):
        coefficients = alternation_coefficients(6, duty_cycle=0.5)
        assert coefficients[1] == pytest.approx(0.0, abs=1e-12)  # k=2
        assert coefficients[3] == pytest.approx(0.0, abs=1e-12)  # k=4
        assert coefficients[0] > 0 and coefficients[2] > 0

    def test_jitter_attenuates_higher_harmonics_more(self):
        clean = alternation_coefficients(5, 0.5, jitter_fraction=0.0)
        jittered = alternation_coefficients(5, 0.5, jitter_fraction=0.05)
        ratio_k1 = jittered[0] / clean[0]
        ratio_k5 = jittered[4] / clean[4]
        assert ratio_k1 > ratio_k5

    def test_negative_jitter_rejected(self):
        with pytest.raises(UnitsError):
            alternation_coefficients(3, 0.5, jitter_fraction=-0.1)


class TestAmSidebandLines:
    def test_carrier_plus_symmetric_sidebands(self):
        lines = am_sideband_lines(1.0, 0.2, falt=43.3e3, n_harmonics=3)
        offsets = sorted(line.offset for line in lines)
        assert 0.0 in offsets
        for k in (1, 3):  # even harmonics vanish at 50% duty
            assert k * 43.3e3 in offsets
            assert -k * 43.3e3 in offsets

    def test_sideband_pairs_equal_power(self):
        lines = am_sideband_lines(1.0, 0.3, falt=10e3, n_harmonics=5)
        by_offset = {line.offset: line.power for line in lines}
        for k in (1, 3, 5):
            assert by_offset[k * 10e3] == pytest.approx(by_offset[-k * 10e3])

    def test_carrier_power_is_mean_amplitude_squared(self):
        lines = am_sideband_lines(0.8, 0.2, falt=1e3, duty_cycle=0.5)
        carrier = next(line for line in lines if line.offset == 0.0)
        assert carrier.power == pytest.approx(0.5**2)

    def test_first_sideband_power(self):
        # |c_1| at 50% duty = 1/pi; swing = Ax - Ay
        lines = am_sideband_lines(1.0, 0.0, falt=1e3, duty_cycle=0.5)
        sb = next(line for line in lines if line.offset == 1e3)
        assert sb.power == pytest.approx((1.0 / np.pi) ** 2)

    def test_no_swing_no_sidebands(self):
        lines = am_sideband_lines(0.7, 0.7, falt=1e3)
        assert len(lines) == 1
        assert lines[0].offset == 0.0

    def test_sideband_power_scales_with_swing_squared(self):
        small = am_sideband_lines(0.6, 0.4, falt=1e3)
        large = am_sideband_lines(0.8, 0.2, falt=1e3)
        sb_small = next(l.power for l in small if l.offset == 1e3)
        sb_large = next(l.power for l in large if l.offset == 1e3)
        assert sb_large / sb_small == pytest.approx(9.0)

    def test_jitter_broadens_higher_sidebands_linearly(self):
        lines = am_sideband_lines(1.0, 0.0, falt=10e3, n_harmonics=5, jitter_fraction=0.01)
        widths = {line.order: line.extra_width for line in lines if line.order > 0}
        assert widths[3] == pytest.approx(3 * widths[1])

    def test_negative_amplitude_rejected(self):
        with pytest.raises(UnitsError):
            am_sideband_lines(-0.1, 0.5, falt=1e3)

    def test_invalid_falt_rejected(self):
        with pytest.raises(UnitsError):
            am_sideband_lines(1.0, 0.5, falt=0.0)

    def test_total_sideband_power_bounded_by_parseval(self):
        """Sum of side-band powers cannot exceed the swing's total power."""
        lines = am_sideband_lines(1.0, 0.0, falt=1e3, n_harmonics=50)
        sideband_power = sum(l.power for l in lines if l.offset != 0.0)
        # swing^2 * (mean-square of zero-mean square wave) = 1 * 0.25
        assert sideband_power <= 0.25 + 1e-9
        assert sideband_power > 0.2  # most of it is in the first harmonics


class TestFmDwellLines:
    def test_two_lines_weighted_by_dwell(self):
        lines = fm_dwell_lines(300e3, 320e3, duty_cycle=0.7, power=2.0)
        assert len(lines) == 2
        powers = {line.offset: line.power for line in lines}
        assert powers[300e3] == pytest.approx(1.4)
        assert powers[320e3] == pytest.approx(0.6)

    def test_total_power_conserved(self):
        lines = fm_dwell_lines(300e3, 320e3, duty_cycle=0.3, power=5.0)
        assert sum(line.power for line in lines) == pytest.approx(5.0)

    def test_smear_scales_with_separation(self):
        near = fm_dwell_lines(300e3, 310e3, smear_fraction=0.1)
        far = fm_dwell_lines(300e3, 340e3, smear_fraction=0.1)
        assert far[0].extra_width == pytest.approx(4 * near[0].extra_width)

    def test_invalid_inputs(self):
        with pytest.raises(UnitsError):
            fm_dwell_lines(0.0, 320e3)
        with pytest.raises(UnitsError):
            fm_dwell_lines(300e3, 320e3, duty_cycle=1.5)


class TestModulationDepth:
    def test_full_depth(self):
        assert modulation_depth_from_levels(1.0, 0.0) == pytest.approx(1.0)

    def test_no_modulation(self):
        assert modulation_depth_from_levels(0.5, 0.5) == 0.0

    def test_symmetric(self):
        assert modulation_depth_from_levels(0.8, 0.2) == modulation_depth_from_levels(0.2, 0.8)

    def test_zero_total(self):
        assert modulation_depth_from_levels(0.0, 0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(UnitsError):
            modulation_depth_from_levels(-1.0, 0.5)
