"""Line shapes: normalization, power conservation, broadening."""

import numpy as np
import pytest

from repro.errors import UnitsError
from repro.signals.lineshape import (
    DeltaLine,
    GaussianLine,
    LorentzianLine,
    SpreadSpectrumLine,
)

GRID = np.arange(0.0, 200e3, 50.0)


class TestDeltaLine:
    def test_all_power_in_nearest_bin(self):
        out = DeltaLine().render(GRID, 100e3, 2.5)
        assert out.sum() == pytest.approx(2.5)
        assert out.max() == pytest.approx(2.5)
        assert GRID[int(np.argmax(out))] == pytest.approx(100e3)

    def test_off_grid_center_snaps(self):
        out = DeltaLine().render(GRID, 100.020e3, 1.0)
        assert GRID[int(np.argmax(out))] == pytest.approx(100e3)

    def test_outside_grid_no_power(self):
        out = DeltaLine().render(GRID, 300e3, 1.0)
        assert out.sum() == 0.0

    def test_broadened_becomes_gaussian(self):
        assert isinstance(DeltaLine().broadened(100.0), GaussianLine)
        assert isinstance(DeltaLine().broadened(0.0), DeltaLine)


class TestGaussianLine:
    def test_power_conserved(self):
        out = GaussianLine(500.0).render(GRID, 100e3, 3.0)
        assert out.sum() == pytest.approx(3.0)

    def test_peak_at_center(self):
        out = GaussianLine(500.0).render(GRID, 100e3, 1.0)
        assert GRID[int(np.argmax(out))] == pytest.approx(100e3)

    def test_width_scales_with_sigma(self):
        narrow = GaussianLine(200.0).render(GRID, 100e3, 1.0)
        wide = GaussianLine(2000.0).render(GRID, 100e3, 1.0)
        assert narrow.max() > wide.max()  # same power, more spread

    def test_half_power_points(self):
        sigma = 1000.0
        out = GaussianLine(sigma).render(GRID, 100e3, 1.0)
        center = int(np.argmax(out))
        offset_bins = int(round(sigma * np.sqrt(2 * np.log(2)) / 50.0))
        assert out[center + offset_bins] == pytest.approx(out[center] / 2, rel=0.1)

    def test_broadening_adds_in_quadrature(self):
        broadened = GaussianLine(300.0).broadened(400.0)
        assert broadened.sigma == pytest.approx(500.0)

    def test_invalid_sigma(self):
        with pytest.raises(UnitsError):
            GaussianLine(0.0)


class TestLorentzianLine:
    def test_power_conserved(self):
        out = LorentzianLine(300.0).render(GRID, 100e3, 1.0)
        assert out.sum() == pytest.approx(1.0)

    def test_heavier_tails_than_gaussian(self):
        lorentzian = LorentzianLine(500.0).render(GRID, 100e3, 1.0)
        gaussian = GaussianLine(500.0).render(GRID, 100e3, 1.0)
        idx = int(np.searchsorted(GRID, 103e3))  # 6 widths out
        assert lorentzian[idx] > gaussian[idx]

    def test_invalid_gamma(self):
        with pytest.raises(UnitsError):
            LorentzianLine(-1.0)


class TestSpreadSpectrumLine:
    def test_power_conserved(self):
        out = SpreadSpectrumLine(20e3).render(GRID, 100e3, 4.0)
        assert out.sum() == pytest.approx(4.0)

    def test_sinusoidal_profile_has_edge_horns(self):
        """Arcsine dwell density: the band edges are hotter than the center
        (the twin humps of the paper's Figure 14)."""
        shape = SpreadSpectrumLine(40e3, profile="sinusoidal")
        out = shape.render(GRID, 100e3, 1.0)
        center = out[int(np.searchsorted(GRID, 100e3))]
        low_edge = out[int(np.searchsorted(GRID, 80e3))]
        high_edge = out[int(np.searchsorted(GRID, 120e3))]
        assert low_edge > 2 * center
        assert high_edge > 2 * center

    def test_triangular_profile_flat(self):
        shape = SpreadSpectrumLine(40e3, profile="triangular", edge_sigma=200.0)
        out = shape.render(GRID, 100e3, 1.0)
        inside = out[(GRID > 85e3) & (GRID < 115e3)]
        assert inside.max() / inside.min() < 1.3

    def test_power_confined_to_band(self):
        shape = SpreadSpectrumLine(40e3, edge_sigma=500.0)
        out = shape.render(GRID, 100e3, 1.0)
        outside = out[(GRID < 75e3) | (GRID > 125e3)]
        assert outside.sum() < 0.01

    def test_invalid_profile(self):
        with pytest.raises(UnitsError):
            SpreadSpectrumLine(1e3, profile="sawtooth")

    def test_invalid_width(self):
        with pytest.raises(UnitsError):
            SpreadSpectrumLine(0.0)

    def test_broadened_keeps_width(self):
        shape = SpreadSpectrumLine(40e3, edge_sigma=400.0)
        wider = shape.broadened(300.0)
        assert wider.width == shape.width
        assert wider.edge_sigma == pytest.approx(500.0)


class TestRenderEdgeCases:
    def test_window_partially_off_grid(self):
        out = GaussianLine(2000.0).render(GRID, 500.0, 1.0)
        # Power near the grid edge is renormalized onto the visible bins.
        assert out.sum() == pytest.approx(1.0)

    def test_zero_power_renders_zero(self):
        out = GaussianLine(500.0).render(GRID, 100e3, 0.0)
        assert out.sum() == 0.0
