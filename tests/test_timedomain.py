"""Time-domain capture path: synthesis calibration and end-to-end FASE.

The strongest internal validation in the repository: the same machine
model, driven through sampled waveforms + Welch estimation instead of
analytic line rendering, must present the same carriers to the unchanged
FASE pipeline.
"""

import numpy as np
import pytest

from repro import FaseConfig, MicroOp
from repro.core import CarrierDetector
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.welch import trace_from_iq
from repro.system import build_environment, corei7_desktop
from repro.system.environment import RFEnvironment, ToneInterferer
from repro.system.timedomain import TimeDomainCampaign, TimeDomainScene, _environment_iq
from repro.uarch.activity import AlternationActivity
from repro.uarch.isa import MicroOp as Op, activity_levels


@pytest.fixture(scope="module")
def machine():
    return corei7_desktop(
        environment=build_environment(4e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )


@pytest.fixture(scope="module")
def td_result(machine):
    config = FaseConfig(
        span_low=200e3, span_high=700e3, fres=50.0,
        falt1=43.3e3, f_delta=0.5e3, name="TD window",
    )
    campaign = TimeDomainCampaign(machine, config, duration=0.4, rng=np.random.default_rng(1))
    return campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")


class TestEnvironmentSynthesis:
    """The PSD-shaped noise synthesis must be power-calibrated."""

    def test_tone_power_calibrated(self):
        env = RFEnvironment(sources=[ToneInterferer(310e3, -100.0)])
        fs, center, n = 200e3, 320e3, 1 << 17
        iq = _environment_iq(env, None, center, fs, n, np.random.default_rng(0))
        grid = FrequencyGrid(250e3, 390e3, 100.0)
        trace = trace_from_iq(iq, fs, grid, center_frequency=center, nperseg=4096)
        index = grid.index_of(310e3)
        band = float(trace.power_mw[index - 3 : index + 4].sum())
        assert 10 * np.log10(band) == pytest.approx(-100.0, abs=1.0)

    def test_floor_density_calibrated(self):
        env = RFEnvironment.quiet(floor_dbm_per_hz=-160.0)
        fs, center, n = 200e3, 320e3, 1 << 17
        iq = _environment_iq(env, None, center, fs, n, np.random.default_rng(1))
        grid = FrequencyGrid(250e3, 390e3, 100.0)
        trace = trace_from_iq(iq, fs, grid, center_frequency=center, nperseg=4096)
        density_dbm = 10 * np.log10(trace.power_mw.mean() / grid.resolution)
        assert density_dbm == pytest.approx(-160.0, abs=1.0)


class TestSceneSynthesis:
    def test_carrier_power_matches_analytic_path(self, machine):
        """The 315 kHz regulator line lands at the same level either way."""
        activity = AlternationActivity.constant(
            activity_levels(Op.LDM), label="steady"
        )
        scene = TimeDomainScene(machine, activity, 450e3, 650e3, rng=np.random.default_rng(2))
        grid = FrequencyGrid(250e3, 650e3, 50.0)
        td_trace = scene.capture_trace(grid, duration=0.3)
        from repro.spectrum.analyzer import SpectrumAnalyzer

        analytic = SpectrumAnalyzer(n_averages=None).capture(machine.scene(activity), grid)
        index = grid.index_of(315e3)
        td_band = td_trace.power_mw[index - 20 : index + 21].sum()
        an_band = analytic.power_mw[index - 20 : index + 21].sum()
        assert 10 * np.log10(td_band / an_band) == pytest.approx(0.0, abs=2.0)

    def test_synthesize_shape(self, machine):
        activity = AlternationActivity.constant({}, label="idle")
        scene = TimeDomainScene(machine, activity, 450e3, 500e3, rng=np.random.default_rng(3))
        iq = scene.synthesize(0.01)
        assert iq.dtype == complex
        assert len(iq) == int(0.01 * 500e3)

    def test_reproducible_given_seed(self, machine):
        activity = AlternationActivity.constant({}, label="idle")
        a = TimeDomainScene(machine, activity, 450e3, 500e3, rng=np.random.default_rng(4)).synthesize(0.005)
        b = TimeDomainScene(machine, activity, 450e3, 500e3, rng=np.random.default_rng(4)).synthesize(0.005)
        np.testing.assert_array_equal(a, b)


class TestEndToEndFase:
    def test_td_campaign_detects_paper_carriers(self, td_result):
        """FASE over the waveform path finds the regulators and refresh."""
        detections = CarrierDetector().detect(td_result)
        frequencies = np.array([d.frequency for d in detections])
        for expected in (315e3, 450e3, 512e3):
            assert np.min(np.abs(frequencies - expected)) < 1e3, expected

    def test_no_detection_at_core_regulator(self, td_result):
        """The LDM/LDL1 pair must not claim the 333 kHz core regulator in
        the time-domain path either."""
        detections = CarrierDetector().detect(td_result)
        for detection in detections:
            assert abs(detection.frequency - 333e3) > 2e3

    def test_measurements_have_distinct_falts(self, td_result):
        """Regression for two real bugs: a child_rng label collision gave
        two measurements identical noise, and per-period sample rounding
        collapsed all five falts onto one effective frequency."""
        falts = td_result.falts
        assert len(set(round(f) for f in falts)) == 5
        # side-band peaks must actually move measurement-to-measurement
        grid = td_result.grid
        positions = []
        for measurement in td_result.measurements:
            target = 512e3 - measurement.falt
            index = grid.index_of(target)
            segment = measurement.trace.power_mw[index - 20 : index + 21]
            positions.append(grid.frequency_at(index - 20 + int(np.argmax(segment))))
        assert len(set(positions)) >= 4
