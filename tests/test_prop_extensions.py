"""Property-based tests over the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.attack import decode_bits
from repro.mitigation import RandomizedRefreshEmitter
from repro.signals.waveform import synthesize_alternation_envelope
from repro.system.refresh import MemoryRefreshEmitter
from repro.uarch.isa import MicroOp
from repro.uarch.program import Program, ProgramPhase, ProgramSimulator

bits_strategy = st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=24).filter(
    lambda bits: 0 in bits and 1 in bits
)


class TestDecodeProperties:
    @given(bits=bits_strategy)
    @settings(max_examples=50)
    def test_clean_envelope_always_decoded(self, bits):
        slot = 64
        envelope = np.concatenate(
            [np.full(slot, 2.0 if b else 1.0) for b in bits]
        )
        decoded, _ = decode_bits(envelope, len(bits), guard_fraction=0.1)
        assert decoded == tuple(bits)

    @given(bits=bits_strategy, noise=st.floats(min_value=0.0, max_value=0.2))
    @settings(max_examples=30)
    def test_mild_noise_tolerated(self, bits, noise):
        rng = np.random.default_rng(int(noise * 1e6) + len(bits))
        slot = 64
        envelope = np.concatenate(
            [np.full(slot, 2.0 if b else 1.0) for b in bits]
        ) + noise * rng.standard_normal(slot * len(bits))
        decoded, _ = decode_bits(envelope, len(bits), guard_fraction=0.1)
        assert decoded == tuple(bits)


class TestRandomizationProperties:
    @given(
        randomization=st.floats(min_value=0.0, max_value=1.0),
        order=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60)
    def test_retention_bounded_and_never_amplifies(self, randomization, order):
        emitter = RandomizedRefreshEmitter(
            "r", fundamental_dbm=-120.0, randomization=randomization
        )
        retention = emitter.coherence_retention(order)
        assert 0.0 <= retention <= 1.0
        stock = MemoryRefreshEmitter("s", fundamental_dbm=-120.0)
        assert emitter.envelope(order, 0.0) <= stock.envelope(order, 0.0) + 1e-12

    @given(randomization=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=30)
    def test_more_randomization_weaker_fundamental(self, randomization):
        weaker = RandomizedRefreshEmitter(
            "a", fundamental_dbm=-120.0, randomization=randomization
        )
        # sinc is monotone decreasing on [0, 1] for the fundamental
        reference = RandomizedRefreshEmitter(
            "b", fundamental_dbm=-120.0, randomization=randomization / 2
        )
        assert weaker.coherence_retention(1) <= reference.coherence_retention(1) + 1e-12


class TestEnvelopeProperties:
    @given(
        falt=st.floats(min_value=5e3, max_value=80e3),
        duty=st.floats(min_value=0.2, max_value=0.8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40)
    def test_mean_matches_duty(self, falt, duty, seed):
        envelope = synthesize_alternation_envelope(
            0.02, 1e6, falt, 1.0, 0.0, duty_cycle=duty,
            rng=np.random.default_rng(seed),
        )
        assert envelope.mean() == pytest.approx(duty, abs=0.05)

    @given(falt=st.floats(min_value=5e3, max_value=80e3))
    @settings(max_examples=40)
    def test_edge_rate_matches_falt(self, falt):
        """Absolute-time edge placement keeps the long-run rate exact —
        the regression property behind the falt-quantization bug."""
        envelope = synthesize_alternation_envelope(
            0.05, 1e6, falt, 1.0, 0.0, rng=np.random.default_rng(0)
        )
        rises = np.sum((envelope[1:] > 0.5) & (envelope[:-1] < 0.5))
        assert rises == pytest.approx(0.05 * falt, rel=0.02)


class TestProgramProperties:
    @given(
        counts=st.lists(st.integers(min_value=100, max_value=50_000), min_size=1, max_size=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30)
    def test_trace_duration_additive(self, counts, seed):
        simulator = ProgramSimulator()
        program = Program([ProgramPhase(MicroOp.ADD, c) for c in counts])
        trace = simulator.trace(program, rng=np.random.default_rng(seed))
        assert len(trace.durations) == len(counts)
        assert trace.total_seconds == pytest.approx(sum(trace.durations))

    @given(repeat=st.integers(min_value=1, max_value=5))
    @settings(max_examples=20)
    def test_repeat_scales_iterations(self, repeat):
        program = Program([ProgramPhase(MicroOp.ADD, 100)], repeat=repeat)
        assert program.total_iterations() == 100 * repeat
