"""Memory refresh emitter: the Section 4.2 inverted-modulation mechanism."""

import pytest

from repro.errors import SystemModelError
from repro.spectrum.grid import FrequencyGrid
from repro.system.domains import MEMORY_UTILIZATION
from repro.system.refresh import DDR3_REFRESH_FREQUENCY, MemoryRefreshEmitter
from repro.uarch.activity import AlternationActivity

GRID = FrequencyGrid(0.0, 2e6, 50.0)


def make_refresh(**kwargs):
    defaults = dict(fundamental_dbm=-122.0, coherence_loss=2.0, n_ranks=1)
    defaults.update(kwargs)
    return MemoryRefreshEmitter(**defaults)


class TestTiming:
    def test_ddr3_rate_is_128khz(self):
        """tREFI = 7.8 us -> 128 kHz, 'the maximum allowable average time
        between refresh commands for recent DRAM standards such as DDR3'."""
        assert DDR3_REFRESH_FREQUENCY == pytest.approx(1.0 / 7.8125e-6)

    def test_duty_cycle_below_three_percent(self):
        """'The duty cycle of the memory refresh activity is very low (<3%)'."""
        assert make_refresh().duty_cycle < 0.03

    def test_turion_variant(self):
        emitter = make_refresh(refresh_frequency=132e3)
        assert emitter.refresh_frequency == 132e3


class TestInvertedModulation:
    def test_carrier_weakens_with_activity(self):
        """'The carrier signal is strongest when there is no memory activity
        and weakest when we generate continuous memory activity.'"""
        emitter = make_refresh()
        idle = emitter.render(GRID, AlternationActivity.constant({MEMORY_UTILIZATION: 0.0}))
        busy = emitter.render(GRID, AlternationActivity.constant({MEMORY_UTILIZATION: 0.9}))
        carrier_bin = GRID.index_of(128e3)
        assert idle[carrier_bin] > 3 * busy[carrier_bin]

    def test_lost_power_is_dispersed(self):
        """Delayed refreshes spread energy across a wide band: total power
        near a harmonic is roughly conserved, the narrow line is not."""
        emitter = make_refresh()
        idle = emitter.render(GRID, AlternationActivity.constant({MEMORY_UTILIZATION: 0.0}))
        busy = emitter.render(GRID, AlternationActivity.constant({MEMORY_UTILIZATION: 0.9}))
        lo, hi = GRID.index_of(50e3), GRID.index_of(200e3)
        assert busy[lo:hi].sum() > 0.4 * idle[lo:hi].sum()
        # but the peak bin collapses
        assert busy[GRID.index_of(128e3)] < 0.2 * idle[GRID.index_of(128e3)]

    def test_coherence_monotone(self):
        emitter = make_refresh()
        values = [emitter.coherence(u) for u in (0.0, 0.3, 0.6, 0.9)]
        assert values == sorted(values, reverse=True)
        assert values[0] == 1.0

    def test_alternation_produces_sidebands(self):
        """Alternating utilization AM-modulates every refresh harmonic —
        how FASE finds the signal in Figure 11."""
        emitter = make_refresh()
        activity = AlternationActivity(
            falt=43.3e3,
            levels_x={MEMORY_UTILIZATION: 0.9},
            levels_y={MEMORY_UTILIZATION: 0.0},
        )
        power = emitter.render(GRID, activity)
        sideband = power[GRID.index_of(128e3 + 43.3e3)]
        floor = power[GRID.index_of(100e3)]
        assert sideband > 10 * max(floor, 1e-30)


class TestRankStaggering:
    def test_four_ranks_strong_comb_at_512k(self):
        """Figure 11 shows 512 kHz multiples; near-field reveals 128 kHz GCD."""
        emitter = make_refresh(n_ranks=4, rank_imbalance=0.15)
        idle = AlternationActivity.constant({MEMORY_UTILIZATION: 0.0})
        power = emitter.render(GRID, idle)
        strong = power[GRID.index_of(512e3)]
        weak = power[GRID.index_of(128e3)]
        assert strong > 20 * weak
        assert weak > 0  # the imbalance leak exists (visible near-field)

    def test_single_rank_full_comb(self):
        emitter = make_refresh(n_ranks=1)
        assert emitter.rank_stagger_factor(1) == 1.0
        assert emitter.rank_stagger_factor(7) == 1.0

    def test_stagger_factor_unity_at_multiples(self):
        emitter = make_refresh(n_ranks=4)
        assert emitter.rank_stagger_factor(4) == pytest.approx(1.0)
        assert emitter.rank_stagger_factor(8) == pytest.approx(1.0)

    def test_calibration_anchored_to_comb_line(self):
        """fundamental_dbm refers to the first strong comb line (512 kHz)."""
        emitter = make_refresh(n_ranks=4, fundamental_dbm=-122.0)
        idle = AlternationActivity.constant({MEMORY_UTILIZATION: 0.0})
        power = emitter.render(GRID, idle)
        from repro.units import milliwatts_to_dbm

        assert float(milliwatts_to_dbm(power[GRID.index_of(512e3)])) == pytest.approx(
            -122.0, abs=0.5
        )


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(SystemModelError):
            make_refresh(refresh_frequency=0.0)
        with pytest.raises(SystemModelError):
            make_refresh(coherence_loss=-1.0)
        with pytest.raises(SystemModelError):
            make_refresh(n_ranks=0)
        with pytest.raises(SystemModelError):
            make_refresh(rank_imbalance=1.5)
        with pytest.raises(SystemModelError):
            make_refresh().coherence(2.0)

    def test_duty_regime_guard(self):
        # 2 MHz refresh rate would give a 40% duty cycle: not refresh-like.
        with pytest.raises(SystemModelError):
            make_refresh(refresh_frequency=2e6)
