"""The orchestrated Section 4 workflow on the Core i7."""

import numpy as np
import pytest

from repro.analysis.investigate import (
    STRENGTHENS,
    WEAKENS,
    investigate,
)
from repro.errors import DetectionError
from repro.system import build_environment, corei7_desktop


@pytest.fixture(scope="module")
def investigation():
    machine = corei7_desktop(
        environment=build_environment(4e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    return investigate(machine, rng=np.random.default_rng(1))


class TestInvestigation:
    def test_finds_all_four_sources(self, investigation):
        fundamentals = sorted(f.fundamental for f in investigation.findings)
        assert len(fundamentals) == 4
        for expected in (225e3, 315e3, 333e3, 512e3):
            assert any(abs(f - expected) < 3e3 for f in fundamentals), expected

    def test_dram_regulator_finding(self, investigation):
        finding = investigation.finding_near(315e3)
        assert finding.mechanism == "switching regulator"
        assert finding.fingerprint == "memory-side"
        assert finding.component == "DRAM DIMM regulator"
        assert finding.response == STRENGTHENS

    def test_refresh_finding_with_inverted_response(self, investigation):
        """The Section 4.2 narrative end to end: localized to the DIMMs,
        and the carrier WEAKENS as memory activity rises."""
        finding = investigation.finding_near(512e3)
        assert finding.mechanism == "memory refresh"
        assert finding.component == "memory refresh"
        assert finding.response == WEAKENS

    def test_core_regulator_finding(self, investigation):
        finding = investigation.finding_near(333e3)
        assert finding.fingerprint == "core-side"
        assert finding.component == "CPU core regulator"
        assert finding.response == STRENGTHENS

    def test_memory_controller_regulator_finding(self, investigation):
        finding = investigation.finding_near(225e3)
        assert finding.component == "memory-controller regulator"

    def test_to_text(self, investigation):
        text = investigation.to_text()
        assert "512.0 kHz" in text or "512" in text
        assert "weakens" in text

    def test_finding_near_miss_raises(self, investigation):
        with pytest.raises(DetectionError):
            investigation.finding_near(999e3)
