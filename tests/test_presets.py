"""Preset machines: every number the paper states, as model ground truth."""

import numpy as np
import pytest

from repro.system import (
    ALL_PRESETS,
    ConstantOnTimeRegulator,
    DRAMClockEmitter,
    MemoryRefreshEmitter,
    SwitchingRegulator,
    corei7_desktop,
    turionx2_laptop,
)
from repro.uarch.activity import AlternationActivity
from repro.uarch.isa import MicroOp, activity_levels


def ldm_ldl1_activity():
    return AlternationActivity(
        falt=43.3e3,
        levels_x=activity_levels(MicroOp.LDM),
        levels_y=activity_levels(MicroOp.LDL1),
    )


def ldl2_ldl1_activity():
    return AlternationActivity(
        falt=43.3e3,
        levels_x=activity_levels(MicroOp.LDL2),
        levels_y=activity_levels(MicroOp.LDL1),
    )


class TestCorei7:
    def test_paper_frequencies(self):
        machine = corei7_desktop(rng=np.random.default_rng(0))
        assert machine.emitter_named("DRAM DIMM regulator").switching_frequency == 315e3
        assert machine.emitter_named("memory refresh").refresh_frequency == 128e3
        dram_clock = machine.emitter_named("DRAM clock")
        assert dram_clock.band_edges() == (pytest.approx(332e6), pytest.approx(333e6))

    def test_refresh_staggered_four_ranks(self):
        machine = corei7_desktop(rng=np.random.default_rng(0))
        assert machine.emitter_named("memory refresh").n_ranks == 4

    def test_ldm_ldl1_modulates_memory_side_only(self):
        """Ground truth behind Figure 11: memory pair moves the two memory
        regulators, refresh, and the DRAM clock — not the core regulator."""
        machine = corei7_desktop(rng=np.random.default_rng(0))
        modulated = {e.name for e in machine.modulated_emitters(ldm_ldl1_activity())}
        assert "DRAM DIMM regulator" in modulated
        assert "memory-controller regulator" in modulated
        assert "memory refresh" in modulated
        assert "DRAM clock" in modulated
        assert "CPU core regulator" not in modulated

    def test_ldl2_ldl1_modulates_core_only(self):
        """Ground truth behind Figure 13."""
        machine = corei7_desktop(rng=np.random.default_rng(0))
        modulated = {e.name for e in machine.modulated_emitters(ldl2_ldl1_activity())}
        assert modulated == {"CPU core regulator"}

    def test_unmodulated_spurs_exist(self):
        """FASE must have something to reject."""
        machine = corei7_desktop(rng=np.random.default_rng(0))
        names = {e.name for e in machine.emitters}
        assert "RTC crystal" in names
        assert "CPU base clock" in names


class TestTurion:
    def test_refresh_at_132khz(self):
        """'The memory refresh carrier for the AMD Turion X2 laptop is at
        132 kHz instead of 128 kHz.'"""
        machine = turionx2_laptop(rng=np.random.default_rng(0))
        assert machine.emitter_named("memory refresh").refresh_frequency == 132e3

    def test_core_regulator_is_fm(self):
        machine = turionx2_laptop(rng=np.random.default_rng(0))
        core_reg = machine.emitter_named("CPU core regulator (constant on-time)")
        assert isinstance(core_reg, ConstantOnTimeRegulator)

    def test_fm_regulator_modulated_but_in_frequency(self):
        """It responds to core activity (so the paper could confirm FM with
        a spectrogram) yet produces no AM side-bands for FASE."""
        machine = turionx2_laptop(rng=np.random.default_rng(0))
        core_reg = machine.emitter_named("CPU core regulator (constant on-time)")
        assert core_reg.is_modulated_by(ldl2_ldl1_activity())

    def test_two_unidentified_carriers(self):
        machine = turionx2_laptop(rng=np.random.default_rng(0))
        names = {e.name for e in machine.emitters}
        assert "unidentified carrier A" in names
        assert "unidentified carrier B" in names


class TestAllPresets:
    @pytest.mark.parametrize("preset_name", sorted(ALL_PRESETS))
    def test_builds_and_has_three_signal_families(self, preset_name):
        """Section 4.4: 'In all three systems, FASE finds the same types of
        carriers': regulators, refresh, DRAM clock."""
        machine = ALL_PRESETS[preset_name](rng=np.random.default_rng(0))
        kinds = {type(e) for e in machine.emitters}
        assert SwitchingRegulator in kinds
        assert MemoryRefreshEmitter in kinds
        assert DRAMClockEmitter in kinds

    @pytest.mark.parametrize("preset_name", sorted(ALL_PRESETS))
    def test_deterministic_given_seed(self, preset_name):
        a = ALL_PRESETS[preset_name](rng=np.random.default_rng(3))
        b = ALL_PRESETS[preset_name](rng=np.random.default_rng(3))
        grid_power_a = a.idle_scene().mean_bin_power
        grid_power_b = b.idle_scene().mean_bin_power
        from repro.spectrum.grid import FrequencyGrid

        grid = FrequencyGrid(0.0, 1e6, 100.0)
        np.testing.assert_array_equal(grid_power_a(grid), grid_power_b(grid))

    @pytest.mark.parametrize("preset_name", sorted(ALL_PRESETS))
    def test_regulator_frequencies_in_spec_range(self, preset_name):
        """'usually between 200kHz and 500kHz' (Section 1)."""
        machine = ALL_PRESETS[preset_name](rng=np.random.default_rng(0))
        for emitter in machine.emitters:
            if isinstance(emitter, SwitchingRegulator):
                assert 150e3 <= emitter.switching_frequency <= 550e3
