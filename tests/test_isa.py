"""Micro-op activity levels: the constraints the paper's results rely on."""

import pytest

from repro.errors import SystemModelError
from repro.system.domains import (
    ALL_DOMAINS,
    CORE,
    DRAM_BUS,
    DRAM_POWER,
    MEMORY_INTERFACE,
    MEMORY_UTILIZATION,
)
from repro.uarch.isa import OP_SPECS, MicroOp, activity_levels


class TestLevels:
    def test_every_op_has_every_domain(self):
        for op in MicroOp:
            levels = activity_levels(op)
            for domain in ALL_DOMAINS:
                assert domain in levels

    def test_levels_in_unit_range(self):
        for op in MicroOp:
            for level in activity_levels(op).values():
                assert 0.0 <= level <= 1.0

    def test_ldm_and_ldl1_same_core_power(self):
        """Figure 11: LDM/LDL1 does NOT modulate the core regulator — the
        core is stalled during an LLC miss, drawing L1-hit-like power."""
        assert activity_levels(MicroOp.LDM)[CORE] == activity_levels(MicroOp.LDL1)[CORE]

    def test_ldl2_draws_more_core_power_than_ldl1(self):
        """Figure 13: LDL2/LDL1 modulates the core regulator."""
        assert activity_levels(MicroOp.LDL2)[CORE] > activity_levels(MicroOp.LDL1)[CORE]

    def test_onchip_ops_share_memory_side_levels(self):
        """On-chip pairs must leave every memory-side emitter unmodulated."""
        reference = activity_levels(MicroOp.LDL1)
        for op in (MicroOp.LDL2, MicroOp.ADD, MicroOp.SUB, MicroOp.MUL, MicroOp.DIV, MicroOp.NOP):
            levels = activity_levels(op)
            for domain in (MEMORY_INTERFACE, DRAM_POWER, DRAM_BUS, MEMORY_UTILIZATION):
                assert levels[domain] == reference[domain], (op, domain)

    def test_ldm_lights_up_memory_path(self):
        ldm = activity_levels(MicroOp.LDM)
        ldl1 = activity_levels(MicroOp.LDL1)
        for domain in (MEMORY_INTERFACE, DRAM_POWER, DRAM_BUS, MEMORY_UTILIZATION):
            assert ldm[domain] > ldl1[domain]

    def test_stm_also_memory_heavy(self):
        stm = activity_levels(MicroOp.STM)
        assert stm[DRAM_BUS] > 0.5
        assert stm[MEMORY_UTILIZATION] > 0.5

    def test_div_is_hottest_alu_op(self):
        assert activity_levels(MicroOp.DIV)[CORE] > activity_levels(MicroOp.ADD)[CORE]

    def test_copy_returned(self):
        levels = activity_levels(MicroOp.ADD)
        levels[CORE] = 99.0
        assert activity_levels(MicroOp.ADD)[CORE] != 99.0

    def test_non_op_rejected(self):
        with pytest.raises(SystemModelError):
            activity_levels("LDM")


class TestSpecs:
    def test_memory_flag(self):
        assert OP_SPECS[MicroOp.LDM].is_memory
        assert OP_SPECS[MicroOp.STM].is_memory
        assert not OP_SPECS[MicroOp.LDL1].is_memory

    def test_latency_ordering(self):
        """LLC-miss >> L2 hit > L1 hit > simple ALU."""
        def lat(op):
            return OP_SPECS[op].base_latency_cycles

        assert lat(MicroOp.LDM) > 10 * lat(MicroOp.LDL2)
        assert lat(MicroOp.LDL2) > lat(MicroOp.LDL1)
        assert lat(MicroOp.LDL1) > lat(MicroOp.NOP)
