"""SpectrumTrace: linear-power storage, dBm views, shifting, averaging."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.trace import SpectrumTrace, average_traces

GRID = FrequencyGrid(0.0, 100e3, 100.0)


def make_trace(value=1e-12):
    return SpectrumTrace(GRID, np.full(GRID.n_bins, value))


class TestConstruction:
    def test_shape_mismatch(self):
        with pytest.raises(TraceError):
            SpectrumTrace(GRID, np.zeros(10))

    def test_negative_power_rejected(self):
        power = np.zeros(GRID.n_bins)
        power[5] = -1.0
        with pytest.raises(TraceError):
            SpectrumTrace(GRID, power)

    def test_from_dbm_roundtrip(self):
        trace = SpectrumTrace.from_dbm(GRID, np.full(GRID.n_bins, -120.0))
        np.testing.assert_allclose(trace.dbm, -120.0)

    def test_requires_grid(self):
        with pytest.raises(TraceError):
            SpectrumTrace("not a grid", np.zeros(4))


class TestAccessors:
    def test_power_at(self):
        power = np.zeros(GRID.n_bins)
        power[GRID.index_of(50e3)] = 7e-10
        trace = SpectrumTrace(GRID, power)
        assert trace.power_at(50e3) == pytest.approx(7e-10)

    def test_dbm_at(self):
        trace = make_trace(1e-12)
        assert trace.dbm_at(10e3) == pytest.approx(-120.0)

    def test_peak_frequency(self):
        power = np.ones(GRID.n_bins)
        power[GRID.index_of(30e3)] = 10.0
        assert SpectrumTrace(GRID, power).peak_frequency() == pytest.approx(30e3)

    def test_total_power(self):
        assert make_trace(2.0).total_power() == pytest.approx(2.0 * GRID.n_bins)


class TestShifting:
    def test_shifted_power_moves_peak(self):
        """SP(f + shift) evaluated on the grid: the Eq. 2 primitive."""
        power = np.zeros(GRID.n_bins)
        power[GRID.index_of(50e3)] = 1.0
        trace = SpectrumTrace(GRID, power)
        shifted = trace.shifted_power(10e3)
        # at f = 40 kHz, f + 10 kHz hits the 50 kHz peak
        assert shifted[GRID.index_of(40e3)] == pytest.approx(1.0)
        assert shifted[GRID.index_of(50e3)] == pytest.approx(0.0, abs=1e-12)

    def test_interp_between_bins(self):
        power = np.zeros(GRID.n_bins)
        power[10] = 1.0
        trace = SpectrumTrace(GRID, power)
        halfway = trace.interp_power(np.array([GRID.frequency_at(10) + 50.0]))
        assert halfway[0] == pytest.approx(0.5)


class TestSliceAndArithmetic:
    def test_slice(self):
        trace = make_trace(1.0)
        sub = trace.slice(10e3, 20e3)
        assert sub.grid.start >= 10e3 - 1e-6
        assert np.all(sub.power_mw == 1.0)

    def test_add(self):
        total = make_trace(1.0) + make_trace(2.0)
        assert np.all(total.power_mw == 3.0)

    def test_add_incompatible_grid(self):
        other_grid = FrequencyGrid(0.0, 100e3, 50.0)
        other = SpectrumTrace(other_grid, np.zeros(other_grid.n_bins))
        with pytest.raises(TraceError):
            make_trace() + other

    def test_scaled(self):
        assert np.all(make_trace(2.0).scaled(0.5).power_mw == 1.0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(TraceError):
            make_trace().scaled(-1.0)


class TestAveraging:
    def test_average_in_linear_power(self):
        """Power-average, not dB-average: matches analyzer behaviour."""
        a = make_trace(1.0)
        b = make_trace(3.0)
        assert np.all(average_traces([a, b]).power_mw == 2.0)

    def test_average_reduces_variance(self):
        rng = np.random.default_rng(0)
        traces = [
            SpectrumTrace(GRID, rng.gamma(4.0, 0.25, GRID.n_bins)) for _ in range(16)
        ]
        averaged = average_traces(traces)
        assert averaged.power_mw.std() < traces[0].power_mw.std() / 2

    def test_empty_average_rejected(self):
        with pytest.raises(TraceError):
            average_traces([])
