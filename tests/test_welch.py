"""Welch PSD estimation: the time-domain cross-check path."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.welch import trace_from_iq, welch_psd


def tone(frequency, fs=1e6, duration=0.05, amplitude=1.0):
    t = np.arange(int(duration * fs)) / fs
    return amplitude * np.exp(2j * np.pi * frequency * t)


class TestWelchPsd:
    def test_tone_located(self):
        freqs, psd = welch_psd(tone(100e3), 1e6)
        assert freqs[int(np.argmax(psd))] == pytest.approx(100e3, abs=200.0)

    def test_center_frequency_offset(self):
        freqs, psd = welch_psd(tone(100e3), 1e6, center_frequency=330e6)
        assert freqs[int(np.argmax(psd))] == pytest.approx(330.1e6, abs=200.0)

    def test_frequencies_sorted(self):
        freqs, _ = welch_psd(tone(0.0), 1e6)
        assert np.all(np.diff(freqs) > 0)

    def test_power_integral_matches_signal_power(self):
        """Integral of the PSD equals the mean-square signal power."""
        freqs, psd = welch_psd(tone(50e3, amplitude=2.0), 1e6)
        df = float(np.median(np.diff(freqs)))
        assert psd.sum() * df == pytest.approx(4.0, rel=0.05)

    def test_too_short_rejected(self):
        with pytest.raises(TraceError):
            welch_psd(np.ones(4), 1e6)

    def test_bad_sample_rate(self):
        with pytest.raises(TraceError):
            welch_psd(tone(0.0), 0.0)


class TestTraceFromIq:
    def test_trace_peak_at_tone(self):
        grid = FrequencyGrid(0.0, 400e3, 500.0)
        trace = trace_from_iq(tone(100e3), 1e6, grid)
        assert trace.peak_frequency() == pytest.approx(100e3, abs=500.0)

    def test_power_calibration(self):
        """Bin powers integrate to the signal's mean-square power."""
        grid = FrequencyGrid(0.0, 400e3, 500.0)
        trace = trace_from_iq(tone(100e3, amplitude=3.0), 1e6, grid)
        assert trace.total_power() == pytest.approx(9.0, rel=0.1)

    def test_out_of_band_zero(self):
        grid = FrequencyGrid(600e3, 800e3, 500.0)
        trace = trace_from_iq(tone(100e3), 1e6, grid)
        # tone at 100 kHz, grid covers 600-800 kHz: only spectral leakage
        assert trace.total_power() < 1e-3

    def test_grid_required(self):
        with pytest.raises(TraceError):
            trace_from_iq(tone(0.0), 1e6, None)
