"""Cross-check: the analytic frequency-domain renderer against time-domain
synthesis + Welch estimation.

This is the strongest correctness evidence the simulator can give: two
independent implementations of the same physics (AM side-band structure,
spread-spectrum pedestals) must put the same features in the same places
with the same relative powers.
"""

import numpy as np
import pytest

from repro.signals.modulation import am_sideband_lines
from repro.signals.waveform import synthesize_am_iq, synthesize_spread_spectrum_iq
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.welch import trace_from_iq

FS = 2e6
DURATION = 0.25


def band_power(trace, frequency, halfwidth=1.5e3):
    lo, hi = trace.grid.slice_indices(frequency - halfwidth, frequency + halfwidth)
    return float(trace.power_mw[lo:hi].sum())


class TestAmSidebandAgreement:
    @pytest.fixture(scope="class")
    def am_trace(self):
        iq = synthesize_am_iq(
            DURATION, FS, 300e3, falt=43.3e3, amplitude_x=1.0, amplitude_y=0.3,
            rng=np.random.default_rng(0),
        )
        grid = FrequencyGrid(100e3, 500e3, 200.0)
        return trace_from_iq(iq, FS, grid)

    def test_sideband_positions(self, am_trace):
        carrier = band_power(am_trace, 300e3)
        for k in (1, 3):
            assert band_power(am_trace, 300e3 + k * 43.3e3) > 1e-4 * carrier
            assert band_power(am_trace, 300e3 - k * 43.3e3) > 1e-4 * carrier
        # even harmonic suppressed at 50% duty
        assert band_power(am_trace, 300e3 + 2 * 43.3e3) < 0.3 * band_power(
            am_trace, 300e3 + 43.3e3
        )

    def test_sideband_to_carrier_ratio_matches_analytic(self, am_trace):
        """Measured P(sb1)/P(carrier) vs the am_sideband_lines prediction."""
        lines = am_sideband_lines(1.0, 0.3, falt=43.3e3, n_harmonics=1)
        predicted = {line.offset: line.power for line in lines}
        predicted_ratio = predicted[43.3e3] / predicted[0.0]
        measured_ratio = band_power(am_trace, 343.3e3) / band_power(am_trace, 300e3)
        assert measured_ratio == pytest.approx(predicted_ratio, rel=0.15)

    def test_third_harmonic_ratio(self, am_trace):
        lines = am_sideband_lines(1.0, 0.3, falt=43.3e3, n_harmonics=3)
        predicted = {line.offset: line.power for line in lines}
        predicted_ratio = predicted[3 * 43.3e3] / predicted[43.3e3]
        measured_ratio = band_power(am_trace, 300e3 + 3 * 43.3e3) / band_power(
            am_trace, 343.3e3
        )
        assert measured_ratio == pytest.approx(predicted_ratio, rel=0.3)

    def test_total_power_conserved(self, am_trace):
        """Mean-square of the envelope-modulated carrier."""
        # envelope alternates 1.0 / 0.3 at 50% duty -> mean square = 0.545
        assert am_trace.total_power() == pytest.approx(0.545, rel=0.05)


class TestSpreadSpectrumAgreement:
    def test_pedestal_band_and_horns(self):
        iq = synthesize_spread_spectrum_iq(0.1, FS, 400e3, 100e3, sweep_period=100e-6)
        grid = FrequencyGrid(200e3, 500e3, 500.0)
        trace = trace_from_iq(iq, FS, grid)
        in_band = band_power(trace, 350e3, halfwidth=52e3)
        assert in_band / trace.total_power() > 0.95
        # horns at both edges exceed the mid-band density
        center = band_power(trace, 350e3, halfwidth=5e3)
        low_horn = band_power(trace, 301e3, halfwidth=5e3)
        high_horn = band_power(trace, 399e3, halfwidth=5e3)
        assert low_horn > 1.5 * center
        assert high_horn > 1.5 * center
