"""Chaos tier for the campaign service: SIGKILL is part of the API.

Two attack surfaces. The subprocess test is the ISSUE's acceptance
scenario end to end: a real service process (real shards, real HTTP) is
SIGKILLed mid-campaign with a claim in flight, a fresh process is
started on the same root, and the finished job's detections must be
identical to an uninterrupted ``run_survey`` of the same plan — orphan
adoption plus shard purity, demonstrated at the process level. The
kill-point matrix then does what the manifest chaos tier does for
surveys: truncates the store journal to *every* record prefix (with and
without a torn tail welded on), reopens, drains, and asserts each
admitted job converges to the same report.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import FaseConfig, MicroOp, run_survey
from repro.journalutil import iter_journal
from repro.service import COMPLETED, FairShareScheduler, JobStore, ServiceClient
from repro.survey.chaos import stub_result, torn_manifest_tail, truncate_manifest

pytestmark = pytest.mark.chaos

#: Small but real: 2000-bin grid with a populated low band.
SMALL = FaseConfig(
    span_low=0.0, span_high=1e6, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
    name="service chaos test",
)
MACHINES = ("corei7_desktop", "turionx2_laptop")
ONE_PAIR = ((MicroOp.LDM, MicroOp.LDL1),)
PAIR_NAMES = [["LDM", "LDL1"]]

_SERVE_SCRIPT = """
import signal, sys, time
from pathlib import Path

from repro.service import FaseService

root, port_file = sys.argv[1], sys.argv[2]
service = FaseService(root, workers=1)
host, port = service.start()
Path(port_file).write_text(f"{host} {port}")
signal.signal(signal.SIGTERM, lambda *args: sys.exit(0))
while True:
    time.sleep(0.2)
"""

#: A hub-only service: no local fleet at all — every shard must come
#: from a remote worker host, and the hub reaps silent claims itself.
_HUB_SCRIPT = """
import signal, sys, time
from pathlib import Path

from repro.service import FaseService

root, port_file = sys.argv[1], sys.argv[2]
service = FaseService(root, workers=0, reap_after_s=1.0)
host, port = service.start()
Path(port_file).write_text(f"{host} {port}")
signal.signal(signal.SIGTERM, lambda *args: sys.exit(0))
while True:
    time.sleep(0.2)
"""


def carrier_map(report):
    return {
        name: sorted(
            round(det.frequency, 3)
            for activity in fase.activities.values()
            for det in activity.detections
        )
        for name, fase in report.machines.items()
    }


def source_map(report):
    return {
        name: [source.describe() for source in fase.sources]
        for name, fase in report.machines.items()
    }


def _spawn_service(root, port_file, timeout_s=30.0, script=_SERVE_SCRIPT):
    """A service process on ``root``; returns (process, client)."""
    process = subprocess.Popen(
        [sys.executable, "-c", script, str(root), str(port_file)],
        env={**os.environ, "PYTHONPATH": "src"},
    )
    deadline = time.monotonic() + timeout_s
    while not Path(port_file).exists() or not Path(port_file).read_text().strip():
        if process.poll() is not None:
            raise AssertionError(f"service died at startup (rc={process.returncode})")
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("service never published its port")
        time.sleep(0.05)
    host, port = Path(port_file).read_text().split()
    return process, ServiceClient(f"http://{host}:{port}")


class TestServiceSigkillMidCampaign:
    def test_restart_finishes_identically(self, tmp_path):
        """SIGKILL with one shard done and one claim in flight; the
        restarted service adopts the orphan and the job's detections are
        identical to an uninterrupted survey of the same plan."""
        golden = run_survey(machines=MACHINES, pairs=ONE_PAIR, config=SMALL, seed=3)
        assert any(carrier_map(golden).values())  # fixture is non-trivial

        root = tmp_path / "svc"
        process, client = _spawn_service(root, tmp_path / "port-1")
        try:
            job_id = client.submit(
                "alice", machines=list(MACHINES), pairs=PAIR_NAMES, config=SMALL, seed=3
            )
            deadline = time.monotonic() + 120.0
            while client.job(job_id)["n_completed"] < 1:  # mid-campaign...
                assert time.monotonic() < deadline, "first shard never finished"
                time.sleep(0.05)
        finally:
            process.send_signal(signal.SIGKILL)  # ...lights out
            process.wait(timeout=30.0)

        process, client = _spawn_service(root, tmp_path / "port-2")
        try:
            status = client.wait(job_id, timeout_s=120.0)
            assert status["state"] == "completed"
            assert status["n_completed"] == len(MACHINES)
            report = client.result(job_id)
            assert carrier_map(report) == carrier_map(golden)
            assert source_map(report) == source_map(golden)
            fetched, expected = report.to_dict(), golden.to_dict()
            fetched.pop("telemetry"), expected.pop("telemetry")
            assert fetched == expected
            assert not report.ledger.failures  # adoption is not a failure
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30.0)


def _spawn_host(url, name):
    """One ``fase worker`` host process pointed at a running hub."""
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", url, "--name", name,
            "--poll-interval", "0.05", "--quiet",
        ],
        env={**os.environ, "PYTHONPATH": "src"},
    )


class TestWorkerHostSigkillMidShard:
    def test_surviving_host_adopts_and_finishes_identically(self, tmp_path):
        """SIGKILL a worker host mid-shard: the hub reaps its silent
        claim, a second host adopts the orphan, and the finished job is
        byte-identical to an uninterrupted survey — the tentpole's
        crash-safety story at the process level."""
        golden = run_survey(machines=MACHINES, pairs=ONE_PAIR, config=SMALL, seed=3)
        assert any(carrier_map(golden).values())

        root = tmp_path / "svc"
        process, client = _spawn_service(root, tmp_path / "port", script=_HUB_SCRIPT)
        victim = survivor = None
        try:
            job_id = client.submit(
                "alice", machines=list(MACHINES), pairs=PAIR_NAMES, config=SMALL, seed=3
            )
            victim = _spawn_host(client.base_url, "victim-host")
            deadline = time.monotonic() + 120.0
            while True:  # catch the victim holding a claim...
                shards = client.job(job_id)["shards"]
                if "claimed:victim-host" in shards.values():
                    break
                assert time.monotonic() < deadline, f"victim never claimed: {shards}"
                time.sleep(0.01)
            victim.send_signal(signal.SIGKILL)  # ...and kill it mid-shard
            victim.wait(timeout=30.0)

            survivor = _spawn_host(client.base_url, "survivor-host")
            status = client.wait(job_id, timeout_s=180.0)
            assert status["state"] == "completed"
            assert status["n_completed"] == len(MACHINES)
            assert status["workers"].get("survivor-host", 0) >= 1

            report = client.result(job_id)
            assert carrier_map(report) == carrier_map(golden)
            assert source_map(report) == source_map(golden)
            fetched, expected = report.to_dict(), golden.to_dict()
            fetched.pop("telemetry"), expected.pop("telemetry")
            assert fetched == expected

            # The event stream narrates the adoption: the reaper gave
            # the orphan back, and both hosts appear as claimants.
            events = client.events(job_id)
            names = [event["name"] for event in events]
            assert "shard-released" in names
            claimants = {
                event["attrs"]["worker"]
                for event in events
                if event["name"] == "shard-claimed"
            }
            assert {"victim-host", "survivor-host"} <= claimants
        finally:
            for host_process in (victim, survivor):
                if host_process is not None and host_process.poll() is None:
                    host_process.send_signal(signal.SIGTERM)
                    host_process.wait(timeout=30.0)
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30.0)

        # Zero lost, zero duplicated: the journal holds exactly one
        # completed-progress record per shard of the job.
        completed = {}
        for record, _ in iter_journal(root / "store.jsonl"):
            if (
                record is not None
                and record.get("kind") == "progress"
                and record.get("job_id") == job_id
                and record.get("status") == "completed"
            ):
                completed[record["shard_id"]] = completed.get(record["shard_id"], 0) + 1
        assert sorted(completed.values()) == [1] * len(MACHINES)


class TestStoreKillPointMatrix:
    def _open(self, root):
        return JobStore(root, scheduler=FairShareScheduler(())).open(server_name="matrix")

    def _drain(self, store):
        while True:
            claimed = store.claim("w0")
            if claimed is None:
                return
            store.complete_shard(
                claimed.job_id, claimed.spec.shard_id, stub_result(claimed.spec), "w0"
            )

    def test_every_journal_prefix_converges(self, tmp_path):
        """Truncating the store journal to any record prefix — with or
        without a torn tail — and restarting converges every admitted
        job to the identical report; a job whose submit record was lost
        simply never existed."""
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        config = FaseConfig(
            span_low=0.0, span_high=1e5, fres=50.0, falt1=43.3e3, f_delta=1e3,
            name=str(scratch),
        )
        golden_root = tmp_path / "golden"
        store = self._open(golden_root)
        job_id = store.submit(
            tenant="alice", machines=MACHINES, pairs=ONE_PAIR, config=config
        )
        self._drain(store)
        golden = store.job_report(job_id).to_dict()
        log = golden_root / "store.jsonl"
        total = len([line for line in log.read_bytes().split(b"\n") if line.strip()])
        assert total >= 6  # submit + 2 claims + 2 progresses + complete

        for keep in range(total):
            for tear in (False, True):
                work = tmp_path / f"kill-{keep}-{'torn' if tear else 'clean'}"
                shutil.copytree(golden_root, work)
                # The manifest mutilators target <dir>/manifest.jsonl;
                # the store journal gets the same treatment by hand.
                lines = [
                    line
                    for line in (work / "store.jsonl").read_bytes().split(b"\n")
                    if line.strip()
                ]
                data = b"".join(line + b"\n" for line in lines[:keep])
                if tear:
                    data += b'{"record": {"kind": "claim", "job_id'  # mid-write kill
                (work / "store.jsonl").write_bytes(data)

                resumed = self._open(work)
                if job_id not in resumed.jobs:
                    assert keep == 0  # only losing the submit loses the job
                    continue
                self._drain(resumed)
                assert resumed.job_status(job_id)["state"] == COMPLETED
                assert resumed.job_report(job_id).to_dict() == golden

    def test_manifest_damage_heals_under_the_store(self, tmp_path):
        """Store journal intact but the job's *manifest* truncated and
        torn: lost shard results re-run (purity), surviving ones are
        trusted, and the report still converges."""
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        config = FaseConfig(
            span_low=0.0, span_high=1e5, fres=50.0, falt1=43.3e3, f_delta=1e3,
            name=str(scratch),
        )
        root = tmp_path / "store"
        store = self._open(root)
        job_id = store.submit(
            tenant="alice", machines=MACHINES, pairs=ONE_PAIR, config=config
        )
        self._drain(store)
        golden = store.job_report(job_id).to_dict()
        manifest_dir = next((root / "jobs").iterdir()) / "manifest"
        truncate_manifest(manifest_dir, 2)  # header + first record survive
        torn_manifest_tail(manifest_dir)

        resumed = self._open(root)
        self._drain(resumed)
        assert resumed.job_status(job_id)["state"] == COMPLETED
        assert resumed.job_report(job_id).to_dict() == golden
