"""Service tier: the durable job store, the fair-share scheduler, and
the worker fleet.

The store tests exercise the journaled lifecycle directly — submit,
claim, complete, fail, release, cancel — then reopen the store in a
fresh object and assert the replay reconstructs the identical state
(the SIGKILL-at-a-record-boundary contract; the arbitrary-byte kill
points live in the chaos tier). Scheduling tests pin the deterministic
policy surface: concurrency quotas, capture ceilings that skip instead
of deadlock, weighted interleaving, and priority aging. Fleet tests run
real claim-driven worker threads over stub shards. The shared journal
primitives (:mod:`repro.journalutil`) get their own unit coverage here
because this tier is their newest — and strictest — consumer.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import FaseConfig, MicroOp
from repro.errors import ServiceError
from repro.journalutil import (
    append_line,
    checksum_record,
    decode_line,
    encode_line,
    ensure_line_boundary,
    iter_journal,
)
from repro.service import (
    CANCELLED,
    CANCELLING,
    COMPLETED,
    QUEUED,
    RUNNING,
    FairShareScheduler,
    JobSpec,
    JobStore,
    TenantPolicy,
    WorkerFleet,
)
from repro.survey.chaos import count_attempts, stub_result, well_behaved_shard
from repro.survey.report import BUDGET_EXHAUSTED

pytestmark = pytest.mark.service

MACHINES = ("corei7_desktop", "turionx2_laptop")
ONE_PAIR = ((MicroOp.LDM, MicroOp.LDL1),)
THREE_BANDS = ((0.0, 3e4), (3e4, 6e4), (6e4, 9e4))


def _scratch_config(base):
    """A tiny config whose ``name`` smuggles the scratch dir to stubs."""
    return FaseConfig(
        span_low=0.0, span_high=1e5, fres=50.0, falt1=43.3e3, f_delta=1e3, name=str(base)
    )


def _open_store(root, policies=(), aging_decisions=16):
    scheduler = FairShareScheduler(policies, aging_decisions=aging_decisions)
    return JobStore(root, scheduler=scheduler).open(server_name="test")


def _submit(store, scratch, tenant="alice", machines=MACHINES, bands=None, **kwargs):
    return store.submit(
        tenant=tenant,
        machines=machines,
        pairs=ONE_PAIR,
        config=_scratch_config(scratch),
        bands=bands,
        **kwargs,
    )


def _drain(store, worker="w0"):
    """Claim-and-complete until the store goes idle; claim order out."""
    order = []
    while True:
        claimed = store.claim(worker)
        if claimed is None:
            return order
        store.complete_shard(
            claimed.job_id, claimed.spec.shard_id, stub_result(claimed.spec), worker
        )
        order.append((claimed.tenant, claimed.spec.shard_id))


# ----------------------------------------------------------------------
# The shared journal primitives.


class TestJournalUtil:
    def test_encode_decode_round_trip(self):
        record = {"kind": "claim", "shard_id": "a:b:c", "n": 3}
        assert decode_line(encode_line(record)) == record
        assert decode_line(encode_line(record).encode("utf-8")) == record

    def test_checksum_is_key_order_independent(self):
        assert checksum_record({"a": 1, "b": 2}) == checksum_record({"b": 2, "a": 1})

    def test_damage_decodes_to_none_never_raises(self):
        line = encode_line({"kind": "x"})
        assert decode_line(line[:-5]) is None  # torn tail
        assert decode_line(line.replace('"x"', '"y"')) is None  # flipped payload
        assert decode_line("not json at all") is None
        assert decode_line(b"\xff\xfe garbage") is None
        assert decode_line(json.dumps({"no": "envelope"})) is None

    def test_append_and_iterate_with_last_flag(self, tmp_path):
        path = tmp_path / "log.jsonl"
        for n in range(3):
            append_line(path, {"n": n})
        rows = list(iter_journal(path))
        assert [record["n"] for record, _ in rows] == [0, 1, 2]
        assert [is_last for _, is_last in rows] == [False, False, True]

    def test_line_boundary_seals_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, {"n": 0})
        with open(path, "ab") as handle:
            handle.write(b'{"record": {"kind": "claim", "sha')  # kill mid-write
        assert ensure_line_boundary(path) is True
        assert ensure_line_boundary(path) is False  # idempotent
        rows = list(iter_journal(path))
        assert rows[0] == ({"n": 0}, False)
        assert rows[1] == (None, True)  # the sealed fragment reads as damage
        append_line(path, {"n": 1})  # and appends land on a fresh line
        assert list(iter_journal(path))[-1] == ({"n": 1}, True)

    def test_line_boundary_on_clean_or_missing_log(self, tmp_path):
        assert ensure_line_boundary(tmp_path / "absent.jsonl") is False
        path = tmp_path / "log.jsonl"
        append_line(path, {"n": 0})
        assert ensure_line_boundary(path) is False


# ----------------------------------------------------------------------
# The job spec: replayable by construction.


class TestJobSpec:
    def _spec(self, scratch):
        return JobSpec(
            job_id="job-000007",
            tenant="alice",
            machines=MACHINES,
            pairs=(("LDM", "LDL1"),),  # micro-op names, as submit() journals them
            config=_scratch_config(scratch),
            bands=THREE_BANDS,
            seed=5,
            max_shard_retries=1,
        )

    def test_round_trips_through_json(self, tmp_path):
        spec = self._spec(tmp_path)
        revived = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert revived == spec

    def test_shard_plan_is_derived_and_stable(self, tmp_path):
        spec = self._spec(tmp_path)
        plan = spec.shard_plan()
        assert len(plan) == len(MACHINES) * len(THREE_BANDS)
        revived = JobSpec.from_dict(spec.to_dict())
        assert [s.shard_id for s in revived.shard_plan()] == [s.shard_id for s in plan]


# ----------------------------------------------------------------------
# The store lifecycle and its replay.


class TestJobStore:
    def test_submit_claim_complete_lifecycle(self, tmp_path):
        store = _open_store(tmp_path / "store")
        job_id = _submit(store, tmp_path)
        assert store.job_status(job_id)["state"] == QUEUED
        claimed = store.claim("w0")
        assert claimed.job_id == job_id and claimed.tenant == "alice"
        assert store.job_status(job_id)["state"] == RUNNING
        store.complete_shard(job_id, claimed.spec.shard_id, stub_result(claimed.spec), "w0")
        _drain(store)
        status = store.job_status(job_id)
        assert status["state"] == COMPLETED
        assert status["n_completed"] == len(MACHINES)
        assert set(status["shards"].values()) == {"completed"}
        assert store.all_settled()
        # Shard metrics merged into the status (stub shards count 5 each).
        assert status["metrics"]["counters"]["captures_total"] == 5 * len(MACHINES)

    def test_replay_reproduces_partial_state(self, tmp_path):
        root = tmp_path / "store"
        store = _open_store(root)
        job_id = _submit(store, tmp_path)
        claimed = store.claim("w0")
        store.complete_shard(job_id, claimed.spec.shard_id, stub_result(claimed.spec), "w0")
        before = store.job_status(job_id)

        resumed = _open_store(root)
        after = resumed.job_status(job_id)
        assert after == before
        assert resumed.charged == store.charged
        assert resumed.decision == store.decision
        _drain(resumed)
        assert resumed.job_status(job_id)["state"] == COMPLETED

    def test_orphaned_claim_is_released_on_reopen(self, tmp_path):
        root = tmp_path / "store"
        store = _open_store(root)
        job_id = _submit(store, tmp_path)
        claimed = store.claim("w0")  # ... and the service is SIGKILLed here
        shard_id = claimed.spec.shard_id

        resumed = _open_store(root)
        status = resumed.job_status(job_id)
        assert status["shards"][shard_id] == "pending"  # adopted, not lost
        kinds = [r["kind"] for r, _ in iter_journal(root / "store.jsonl") if r]
        assert "restart" in kinds and "release" in kinds
        order = _drain(resumed, worker="w1")
        assert ("alice", shard_id) in order
        assert resumed.job_status(job_id)["state"] == COMPLETED

    def test_torn_store_tail_is_sealed_and_skipped(self, tmp_path):
        root = tmp_path / "store"
        store = _open_store(root)
        job_id = _submit(store, tmp_path)
        with open(root / "store.jsonl", "ab") as handle:
            handle.write(b'{"record": {"kind": "claim", "job_id": "job-0')  # torn
        resumed = _open_store(root)
        assert resumed.job_status(job_id)["state"] == QUEUED
        _drain(resumed)
        assert resumed.job_status(job_id)["state"] == COMPLETED

    def test_durable_result_without_progress_counts_completed(self, tmp_path):
        """The complete_shard kill window: manifest append durable, store
        progress record lost. Replay recovers the result from the
        manifest instead of re-running the shard."""
        root = tmp_path / "store"
        store = _open_store(root)
        job_id = _submit(store, tmp_path)
        claimed = store.claim("w0")
        store.jobs[job_id].manifest.append_shard(stub_result(claimed.spec))
        # ... SIGKILL lands before the progress record is appended.
        resumed = _open_store(root)
        status = resumed.job_status(job_id)
        assert status["shards"][claimed.spec.shard_id] == "completed"
        assert status["n_completed"] == 1

    def test_failed_shard_requeues_then_abandons(self, tmp_path):
        store = _open_store(tmp_path / "store")
        job_id = _submit(store, tmp_path, machines=MACHINES[:1], max_shard_retries=1)
        claimed = store.claim("w0")
        shard_id = claimed.spec.shard_id
        store.fail_shard(job_id, shard_id, "error", "boom", "w0")
        assert store.job_status(job_id)["shards"][shard_id] == "pending"  # requeued
        claimed = store.claim("w0")
        assert claimed.spec.shard_id == shard_id
        store.fail_shard(job_id, shard_id, "error", "boom again", "w0")
        status = store.job_status(job_id)
        assert status["shards"][shard_id] == "abandoned"
        assert status["state"] == COMPLETED  # settled, with the gap ledgered
        report = store.job_report(job_id)
        assert shard_id in report.ledger.abandoned
        assert report.ledger.n_failures == 2
        assert report.n_completed == 0

    def test_abandonment_survives_replay(self, tmp_path):
        root = tmp_path / "store"
        store = _open_store(root)
        job_id = _submit(store, tmp_path, machines=MACHINES[:1], max_shard_retries=0)
        claimed = store.claim("w0")
        store.fail_shard(job_id, claimed.spec.shard_id, "error", "boom", "w0")
        resumed = _open_store(root)
        status = resumed.job_status(job_id)
        assert status["shards"][claimed.spec.shard_id] == "abandoned"
        assert status["state"] == COMPLETED
        assert resumed.claim("w0") is None

    def test_failure_count_is_not_double_charged_by_replay(self, tmp_path):
        """One live failure must replay to one failure, not two: the
        manifest ledger (restored in _admit) is the authoritative count,
        and the journaled progress record only repairs membership. A
        shard with retry budget left must survive exactly as many more
        failures after a restart as it would have without one."""
        root = tmp_path / "store"
        store = _open_store(root)
        job_id = _submit(store, tmp_path, machines=MACHINES[:1], max_shard_retries=2)
        claimed = store.claim("w0")
        shard_id = claimed.spec.shard_id
        store.fail_shard(job_id, shard_id, "error", "boom", "w0")

        resumed = _open_store(root)
        resumed = _open_store(root)  # a second replay must stay at 1 too
        assert resumed.jobs[job_id].failures[shard_id] == 1
        assert resumed.job_status(job_id)["shards"][shard_id] == "pending"
        for detail in ("boom again", "boom thrice"):  # two retries remain
            claimed = resumed.claim("w0")
            assert claimed is not None and claimed.spec.shard_id == shard_id
            resumed.fail_shard(job_id, shard_id, "error", detail, "w0")
        status = resumed.job_status(job_id)
        assert status["shards"][shard_id] == "abandoned"  # 3 > max_shard_retries
        assert status["n_failures"] == 3

    def test_cancel_before_any_claim_is_immediate(self, tmp_path):
        store = _open_store(tmp_path / "store")
        job_id = _submit(store, tmp_path)
        assert store.cancel(job_id) == CANCELLED
        status = store.job_status(job_id)
        assert set(status["shards"].values()) == {"cancelled"}
        assert store.claim("w0") is None
        assert dict(store.job_report(job_id).ledger.cancelled)

    def test_cancel_with_inflight_claim_drains(self, tmp_path):
        store = _open_store(tmp_path / "store")
        job_id = _submit(store, tmp_path)
        claimed = store.claim("w0")
        assert store.cancel(job_id) == CANCELLING  # the claim is still out
        assert store.claim("w1") is None  # but no new work is offered
        store.complete_shard(job_id, claimed.spec.shard_id, stub_result(claimed.spec), "w0")
        status = store.job_status(job_id)
        assert status["state"] == CANCELLED
        assert status["n_completed"] == 1  # the in-flight result is kept

    def test_released_claim_on_cancelling_job_is_cancelled(self, tmp_path):
        store = _open_store(tmp_path / "store")
        job_id = _submit(store, tmp_path)
        claimed = store.claim("w0")
        store.cancel(job_id)
        store.release_shard(job_id, claimed.spec.shard_id, "w0", "worker shutdown")
        status = store.job_status(job_id)
        assert status["state"] == CANCELLED
        assert status["shards"][claimed.spec.shard_id] == "cancelled"

    def test_cancelled_state_survives_replay(self, tmp_path):
        root = tmp_path / "store"
        store = _open_store(root)
        job_id = _submit(store, tmp_path)
        store.claim("w0")
        store.cancel(job_id)
        # SIGKILL while cancelling: the restart releases the orphaned
        # claim, which joins the cancellation instead of resurrecting.
        resumed = _open_store(root)
        status = resumed.job_status(job_id)
        assert status["state"] == CANCELLED
        assert set(status["shards"].values()) == {"cancelled"}
        assert resumed.claim("w0") is None

    def test_released_claim_on_cancelling_job_survives_replay(self, tmp_path):
        """Replaying a post-cancel release must mirror _release_locked's
        CANCELLING branch: the shard stays cancelled instead of being
        reported pending on a cancelled job."""
        root = tmp_path / "store"
        store = _open_store(root)
        job_id = _submit(store, tmp_path)
        claimed = store.claim("w0")
        store.cancel(job_id)
        store.release_shard(job_id, claimed.spec.shard_id, "w0", "worker shutdown")

        resumed = _open_store(root)
        status = resumed.job_status(job_id)
        assert status["state"] == CANCELLED
        assert status["shards"][claimed.spec.shard_id] == "cancelled"
        assert set(status["shards"].values()) == {"cancelled"}

    def test_cancel_terminal_job_is_a_noop(self, tmp_path):
        store = _open_store(tmp_path / "store")
        job_id = _submit(store, tmp_path)
        _drain(store)
        assert store.cancel(job_id) == COMPLETED

    def test_job_ids_monotonic_across_restart(self, tmp_path):
        root = tmp_path / "store"
        store = _open_store(root)
        first = _submit(store, tmp_path)
        resumed = _open_store(root)
        second = _submit(resumed, tmp_path, tenant="bob")
        assert first == "job-000001" and second == "job-000002"

    def test_reap_stale_claims_releases_for_adoption(self, tmp_path):
        store = _open_store(tmp_path / "store")
        job_id = _submit(store, tmp_path)
        claimed = store.claim("ghost")  # alive at claim time, then silent
        store.worker_heartbeat("live")
        # Claiming seeds the liveness clock, so the ghost is fresh now...
        assert store.reap_stale_claims(max_age_s=3600.0) == 0
        # ...and stale once the monotonic clock has moved past the window.
        assert store.reap_stale_claims(max_age_s=3600.0, now=time.monotonic() + 7200.0) == 1
        assert store.job_status(job_id)["shards"][claimed.spec.shard_id] == "pending"
        adopted = [shard_id for _, shard_id in _drain(store, worker="live")]
        assert claimed.spec.shard_id in adopted  # the orphan re-ran elsewhere
        assert store.job_status(job_id)["state"] == COMPLETED

    def test_reap_survives_wall_clock_steps(self, tmp_path, monkeypatch):
        # Reaping ages claims on the monotonic clock: NTP stepping the
        # wall clock must neither mass-release healthy claims (forward
        # step) nor make silent workers immortal (backward step).
        store = _open_store(tmp_path / "store")
        job_id = _submit(store, tmp_path)
        claimed = store.claim("w0")
        store.worker_heartbeat("w0")
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + 3600.0)
        assert store.reap_stale_claims(max_age_s=30.0) == 0  # fresh beat stays claimed
        assert store.job_status(job_id)["shards"][claimed.spec.shard_id].startswith("claimed")
        monkeypatch.setattr(time, "time", lambda: real_time() - 3600.0)
        time.sleep(0.12)  # genuinely silent past the window now
        assert store.reap_stale_claims(max_age_s=0.05) == 1
        assert store.job_status(job_id)["shards"][claimed.spec.shard_id] == "pending"

    def test_unknown_job_raises(self, tmp_path):
        store = _open_store(tmp_path / "store")
        with pytest.raises(ServiceError, match="unknown job"):
            store.job_status("job-999999")

    def test_empty_tenant_rejected(self, tmp_path):
        store = _open_store(tmp_path / "store")
        with pytest.raises(ServiceError, match="tenant"):
            store.submit(tenant="", machines=MACHINES[:1])

    def test_foreign_store_format_rejected(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "HEADER.json").write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ServiceError, match="unsupported store format"):
            _open_store(root)


# ----------------------------------------------------------------------
# Quotas, ceilings, fairness, priority.


class TestScheduling:
    def test_max_concurrent_shards_enforced(self, tmp_path):
        policy = TenantPolicy("alice", max_concurrent_shards=1)
        store = _open_store(tmp_path / "store", policies=(policy,))
        job_id = _submit(store, tmp_path)
        claimed = store.claim("w0")
        assert claimed is not None
        assert store.claim("w1") is None  # at the cap
        store.complete_shard(job_id, claimed.spec.shard_id, stub_result(claimed.spec), "w0")
        assert store.claim("w1") is not None  # headroom again

    def test_capture_ceiling_skips_unfundable_shards(self, tmp_path):
        cost = len(_scratch_config(tmp_path).falts())  # captures per shard
        policy = TenantPolicy("alice", max_captures=cost)  # funds exactly one
        store = _open_store(tmp_path / "store", policies=(policy,))
        job_id = _submit(store, tmp_path)
        order = _drain(store)
        assert len(order) == 1  # one shard funded and run
        status = store.job_status(job_id)
        assert status["state"] == COMPLETED  # skipped, not deadlocked
        assert sorted(status["shards"].values()) == ["completed", "skipped"]
        planned = store.job_report(job_id).ledger.planned
        assert [kind for kind, _ in planned.values()] == [BUDGET_EXHAUSTED]
        assert store.tenant_usage("alice")["captures_spent"] == pytest.approx(cost)

    def test_capture_ceiling_spans_restarts(self, tmp_path):
        """Replay re-charges funded shards, so a restart cannot mint a
        fresh budget for a tenant that already spent its ceiling."""
        root = tmp_path / "store"
        cost = len(_scratch_config(tmp_path).falts())
        policy = TenantPolicy("alice", max_captures=cost)
        store = _open_store(root, policies=(policy,))
        _submit(store, tmp_path)
        _drain(store)
        resumed = _open_store(root, policies=(policy,))
        job_id = _submit(resumed, tmp_path)  # a second job, same tenant
        _drain(resumed)
        status = resumed.job_status(job_id)
        assert status["state"] == COMPLETED
        assert set(status["shards"].values()) == {"skipped"}  # nothing left to fund

    def test_weighted_fair_share_interleaves(self, tmp_path):
        policies = (TenantPolicy("alice", weight=2.0), TenantPolicy("bob", weight=1.0))
        store = _open_store(tmp_path / "store", policies=policies)
        _submit(store, tmp_path, tenant="alice", machines=MACHINES[:1], bands=THREE_BANDS)
        _submit(store, tmp_path, tenant="bob", machines=MACHINES[:1], bands=THREE_BANDS)
        order = [tenant for tenant, _ in _drain(store)]
        assert order[:3].count("alice") == 2  # 2:1 from the first window on
        assert store.charged == {"alice": 3, "bob": 3}

    def test_deterministic_tie_break_is_lexicographic(self, tmp_path):
        store = _open_store(tmp_path / "store")
        _submit(store, tmp_path, tenant="zoe", machines=MACHINES[:1])
        _submit(store, tmp_path, tenant="amy", machines=MACHINES[:1])
        assert store.claim("w0").tenant == "amy"  # equal share: name order wins

    def test_aging_overtakes_static_priority(self, tmp_path):
        policies = (TenantPolicy("alice", priority=1), TenantPolicy("bob", priority=0))
        store = _open_store(tmp_path / "store", policies=policies, aging_decisions=2)
        _submit(store, tmp_path, tenant="alice", machines=MACHINES[:1], bands=THREE_BANDS)
        _submit(store, tmp_path, tenant="bob", machines=MACHINES[:1], bands=THREE_BANDS)
        order = [tenant for tenant, _ in _drain(store)]
        assert "bob" in order[:4]  # starved past 2 decisions, bob ages in
        assert order[0] == "alice"  # but static priority won the opener

    def test_new_tenant_ages_from_admission_not_decision_zero(self, tmp_path):
        """A tenant submitting its first job after N total claims starts
        aging from admission — it must not read as having waited all N
        decisions and leapfrog a higher static priority class."""
        policies = (TenantPolicy("alice", priority=1), TenantPolicy("bob", priority=0))
        store = _open_store(tmp_path / "store", policies=policies, aging_decisions=2)
        alice_job = _submit(
            store, tmp_path, tenant="alice", machines=MACHINES[:1], bands=THREE_BANDS
        )
        for _ in range(2):  # two decisions happen before bob even exists
            claimed = store.claim("w0")
            store.complete_shard(
                alice_job, claimed.spec.shard_id, stub_result(claimed.spec), "w0"
            )
        _submit(store, tmp_path, tenant="bob", machines=MACHINES[:1], bands=THREE_BANDS)
        assert store.claim("w0").tenant == "alice"  # no retroactive boost
        with pytest.raises(ServiceError, match="name"):
            TenantPolicy("")
        with pytest.raises(ServiceError, match="weight"):
            TenantPolicy("a", weight=0.0)
        with pytest.raises(ServiceError, match="max_concurrent_shards"):
            TenantPolicy("a", max_concurrent_shards=0)
        with pytest.raises(ServiceError, match="max_captures"):
            TenantPolicy("a", max_captures=-1)
        with pytest.raises(ServiceError, match="duplicate"):
            FairShareScheduler((TenantPolicy("a"), TenantPolicy("a")))
        with pytest.raises(ServiceError, match="aging_decisions"):
            FairShareScheduler((), aging_decisions=0)


# ----------------------------------------------------------------------
# Stub shard body for the heartbeat-collision regression (module-level
# so the watchdog's fork pool can pickle it by reference).

from repro.survey.shards import beat_heartbeat  # noqa: E402


def hang_after_one_beat(spec):
    # One beat, then silence: the stall watchdog MUST kill this.
    beat_heartbeat(spec.heartbeat_path)
    time.sleep(30.0)
    return stub_result(spec)


# ----------------------------------------------------------------------
# The worker fleet over stub shards.


class TestWorkerFleet:
    def test_fleet_drains_two_tenant_jobs(self, tmp_path):
        # Per-job scratch dirs: both jobs plan the same shard ids, so a
        # shared dir would conflate their attempt counters.
        scratches = {tenant: tmp_path / tenant for tenant in ("alice", "bob")}
        for scratch in scratches.values():
            scratch.mkdir()
        store = _open_store(tmp_path / "store")
        jobs = {
            tenant: _submit(store, scratch, tenant=tenant)
            for tenant, scratch in scratches.items()
        }
        fleet = WorkerFleet(store, workers=2, shard_fn=well_behaved_shard)
        fleet.start()
        try:
            assert fleet.drain(timeout_s=30.0)
        finally:
            fleet.stop()
        for tenant, job_id in jobs.items():
            status = store.job_status(job_id)
            assert status["state"] == COMPLETED
            assert status["n_completed"] == len(MACHINES)
            for shard_id in status["shards"]:
                assert count_attempts(scratches[tenant], shard_id) == 1  # no duplicates

    def test_fleet_skips_cancelled_job(self, tmp_path):
        doomed_scratch = tmp_path / "doomed"
        doomed_scratch.mkdir()
        store = _open_store(tmp_path / "store")
        doomed = _submit(store, doomed_scratch, tenant="alice")
        kept = _submit(store, tmp_path, tenant="bob")
        store.cancel(doomed)
        fleet = WorkerFleet(store, workers=2, shard_fn=well_behaved_shard)
        fleet.start()
        try:
            assert fleet.drain(timeout_s=30.0)
        finally:
            fleet.stop()
        assert store.job_status(doomed)["state"] == CANCELLED
        assert store.job_status(kept)["state"] == COMPLETED
        for shard_id in store.job_status(doomed)["shards"]:
            assert count_attempts(doomed_scratch, shard_id) == 0  # never started

    def test_fleet_needs_a_worker(self, tmp_path):
        store = _open_store(tmp_path / "store")
        with pytest.raises(ServiceError, match="at least one worker"):
            WorkerFleet(store, workers=0)

    def test_drain_is_immediate_on_an_empty_store(self, tmp_path):
        # An idle-but-healthy service has no unfinished work: draining
        # must answer True at once, not spin out the timeout on "no jobs
        # ever happened".
        store = _open_store(tmp_path / "store")
        fleet = WorkerFleet(store, workers=2, shard_fn=well_behaved_shard)
        started = time.monotonic()
        assert fleet.drain(timeout_s=5.0) is True
        assert time.monotonic() - started < 2.0

    def test_shard_heartbeat_paths_are_job_namespaced(self, tmp_path):
        # Two jobs over the same plan produce identical shard ids; their
        # stall-watchdog heartbeat files must still be distinct.
        store = _open_store(tmp_path / "store")
        _submit(store, tmp_path, tenant="alice", machines=MACHINES[:1])
        _submit(store, tmp_path, tenant="bob", machines=MACHINES[:1])
        fleet = WorkerFleet(store, workers=1, shard_timeout_s=5.0)
        first, second = store.claim("w0"), store.claim("w1")
        assert first.spec.shard_id == second.spec.shard_id
        assert first.job_id != second.job_id
        assert fleet.shard_heartbeat_path(first) != fleet.shard_heartbeat_path(second)

    def test_foreign_job_beats_cannot_mask_a_hung_shard(self, tmp_path):
        # Regression: the heartbeat path used to be keyed by shard id
        # alone, so a live shard of job B extended the stall deadline of
        # job A's hung twin forever and the watchdog never fired. Here
        # the fleet runs job A's hung shard while this thread plays job
        # B's live twin, beating the exact path the fleet derives for it.
        store = _open_store(tmp_path / "store")
        jobs = {
            tenant: _submit(
                store, tmp_path, tenant=tenant, machines=MACHINES[:1], max_shard_retries=0
            )
            for tenant in ("alice", "bob")
        }
        fleet = WorkerFleet(
            store,
            workers=1,
            shard_fn=hang_after_one_beat,
            shard_timeout_s=0.75,
            poll_interval_s=0.02,
        )
        # Claim one job's shard by hand before the fleet starts: that job
        # plays the live twin, the other (the one fleet worker's claim)
        # plays the victim.
        twin = store.claim("by-hand")
        (victim,) = (job_id for job_id in jobs.values() if job_id != twin.job_id)
        twin_hb = fleet.shard_heartbeat_path(twin)
        twin_hb.parent.mkdir(parents=True, exist_ok=True)
        fleet.start()
        try:
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                beat_heartbeat(twin_hb)  # the live twin keeps beating...
                shards = store.job_status(victim)["shards"]
                if all(state == "abandoned" for state in shards.values()):
                    break  # ...and the hung shard still got killed
                time.sleep(0.05)
            else:
                pytest.fail(
                    "hung shard never stalled while its twin kept beating: "
                    f"victim={store.job_status(victim)['shards']}"
                )
        finally:
            fleet.stop()
        store.complete_shard(
            twin.job_id, twin.spec.shard_id, stub_result(twin.spec), "by-hand"
        )
        assert store.job_status(twin.job_id)["state"] == COMPLETED
        assert store.job_status(victim)["state"] == COMPLETED  # abandoned settles it

    def test_reaping_runs_on_a_shared_interval(self, tmp_path):
        # Pre-fix, every worker reaped on every poll (~4 workers x 50
        # polls here); the fleet now sweeps at most once per
        # reap_after_s/2 window regardless of fleet size.
        store = _open_store(tmp_path / "store")
        fleet = WorkerFleet(
            store,
            workers=4,
            shard_fn=well_behaved_shard,
            poll_interval_s=0.01,
            reap_after_s=10.0,
        )
        fleet.start()
        try:
            time.sleep(0.5)
        finally:
            fleet.stop()
        assert store.reap_calls <= 2

    def test_job_report_matches_survey_aggregation(self, tmp_path):
        store = _open_store(tmp_path / "store")
        job_id = _submit(store, tmp_path)
        _drain(store)
        report = store.job_report(job_id)
        assert report.n_shards == len(MACHINES)
        assert report.n_completed == len(MACHINES)
        assert sorted(report.machines) == sorted(MACHINES)  # stub results name presets
        assert report.ledger.n_failures == 0
        # And the report round-trips through the service's wire format.
        revived = type(report).from_json(report.to_json())
        assert revived.to_dict() == report.to_dict()
