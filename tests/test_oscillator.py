"""Oscillator models: harmonic frequencies and per-harmonic line shapes."""

import pytest

from repro.errors import UnitsError
from repro.signals.lineshape import DeltaLine, GaussianLine, SpreadSpectrumLine
from repro.signals.oscillator import CrystalOscillator, RCOscillator, SpreadSpectrumClock


class TestCrystalOscillator:
    def test_harmonic_frequencies(self):
        osc = CrystalOscillator(128e3)
        assert osc.harmonic_frequency(1) == 128e3
        assert osc.harmonic_frequency(4) == 512e3

    def test_delta_lines_at_every_harmonic(self):
        osc = CrystalOscillator(128e3)
        for order in (1, 3, 10):
            assert isinstance(osc.lineshape(order), DeltaLine)

    def test_invalid_frequency(self):
        with pytest.raises(UnitsError):
            CrystalOscillator(0.0)

    def test_invalid_order(self):
        with pytest.raises(UnitsError):
            CrystalOscillator(1e6).harmonic_frequency(0)
        with pytest.raises(UnitsError):
            CrystalOscillator(1e6).lineshape(-1)


class TestRCOscillator:
    def test_linewidth_scales_with_harmonic(self):
        """Harmonic m inherits m times the fundamental's absolute jitter."""
        osc = RCOscillator(315e3, fractional_sigma=1e-3)
        s1 = osc.lineshape(1)
        s3 = osc.lineshape(3)
        assert isinstance(s1, GaussianLine)
        assert s3.sigma == pytest.approx(3 * s1.sigma)

    def test_sigma_property(self):
        osc = RCOscillator(315e3, fractional_sigma=2e-3)
        assert osc.sigma == pytest.approx(630.0)

    def test_invalid_sigma(self):
        with pytest.raises(UnitsError):
            RCOscillator(315e3, fractional_sigma=0.0)


class TestSpreadSpectrumClock:
    def test_band_edges_match_papers_example(self):
        """'A 333 MHz memory clock might be swept between 332 and 333 MHz.'"""
        clock = SpreadSpectrumClock(333e6, 1e6)
        low, high = clock.band_edges()
        assert low == pytest.approx(332e6)
        assert high == pytest.approx(333e6)

    def test_harmonic_centered_mid_sweep(self):
        clock = SpreadSpectrumClock(333e6, 1e6)
        assert clock.harmonic_frequency(1) == pytest.approx(332.5e6)
        assert clock.harmonic_frequency(2) == pytest.approx(665e6)

    def test_lineshape_width_scales(self):
        clock = SpreadSpectrumClock(333e6, 1e6)
        assert isinstance(clock.lineshape(1), SpreadSpectrumLine)
        assert clock.lineshape(2).width == pytest.approx(2e6)

    def test_sweep_width_validation(self):
        with pytest.raises(UnitsError):
            SpreadSpectrumClock(333e6, 0.0)
        with pytest.raises(UnitsError):
            SpreadSpectrumClock(333e6, 400e6)

    def test_sweep_period_validation(self):
        with pytest.raises(UnitsError):
            SpreadSpectrumClock(333e6, 1e6, sweep_period=0.0)
