"""Public API surface: exports, exception hierarchy, report rendering."""

import numpy as np
import pytest

import repro
from repro import errors


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.mitigation
        import repro.signals
        import repro.spectrum
        import repro.system
        import repro.uarch

        for module in (
            repro.analysis, repro.core, repro.mitigation, repro.signals,
            repro.spectrum, repro.system, repro.uarch,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError), name

    def test_catchable_as_base(self):
        from repro.spectrum.grid import FrequencyGrid

        with pytest.raises(errors.ReproError):
            FrequencyGrid(0.0, 1.0, 0.0)

    def test_specific_types_distinct(self):
        assert errors.GridError is not errors.TraceError
        assert not issubclass(errors.GridError, errors.TraceError)


class TestReportRendering:
    @pytest.fixture(scope="class")
    def report(self):
        from repro import FaseConfig, MicroOp, run_fase
        from repro.system import build_environment, corei7_desktop

        machine = corei7_desktop(
            environment=build_environment(1e6, kind="quiet"), rng=np.random.default_rng(0)
        )
        config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="surface test")
        return run_fase(
            machine, pairs=((MicroOp.LDM, MicroOp.LDL1),), config=config,
            rng=np.random.default_rng(1),
        )

    def test_activity_report_to_text(self, report):
        text = report.activities["LDM/LDL1"].to_text()
        assert "carriers" in text
        assert "set" in text

    def test_detections_for_unknown_label(self, report):
        with pytest.raises(KeyError):
            report.detections_for("STM/LDL1")

    def test_carriers_near_tolerance(self, report):
        wide = report.carriers_near(315e3, rel_tol=0.05)
        narrow = report.carriers_near(315e3, rel_tol=1e-6)
        assert len(wide) >= len(narrow)

    def test_summary_mentions_mechanisms(self, report):
        assert "regulator" in report.summary() or "refresh" in report.summary()


class TestCliSurvey:
    def test_survey_covers_all_presets(self, capsys):
        from repro.cli import main

        assert main(["survey", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        for name in ("Core i7", "Core i3", "Turion", "Pentium"):
            assert name in out
