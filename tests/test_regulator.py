"""Switching regulators: PWM-to-AM mechanism; constant-on-time FM."""

import numpy as np
import pytest

from repro.errors import SystemModelError
from repro.spectrum.grid import FrequencyGrid
from repro.system.domains import CORE, DRAM_POWER
from repro.system.regulator import ConstantOnTimeRegulator, SwitchingRegulator
from repro.uarch.activity import AlternationActivity

GRID = FrequencyGrid(0.0, 2e6, 50.0)


def make_regulator(**kwargs):
    defaults = dict(
        name="reg",
        switching_frequency=315e3,
        domain=DRAM_POWER,
        fundamental_dbm=-105.0,
        input_volts=12.0,
        output_volts=1.2,
        duty_gain=0.1,
    )
    defaults.update(kwargs)
    return SwitchingRegulator(**defaults)


def dram_alternation(level_x=0.9, level_y=0.1, falt=43.3e3):
    return AlternationActivity(
        falt=falt, levels_x={DRAM_POWER: level_x}, levels_y={DRAM_POWER: level_y}
    )


class TestSwitchingRegulator:
    def test_nominal_duty_is_conversion_ratio(self):
        assert make_regulator().nominal_duty == pytest.approx(0.1)

    def test_duty_rises_with_load(self):
        """The feedback mechanism of Section 4.1."""
        reg = make_regulator()
        assert reg.duty_cycle_at(1.0) > reg.duty_cycle_at(0.0)

    def test_all_harmonics_modulated(self):
        """'Changing the duty cycle changes (modulates) the amplitude of all
        the signal's harmonics.'"""
        reg = make_regulator()
        for order in range(1, 6):
            assert reg.envelope(order, 0.9) != reg.envelope(order, 0.1)

    def test_small_duty_even_harmonics_strong(self):
        """Figure 11 reasoning: strong even harmonics -> small duty cycle."""
        reg = make_regulator()
        assert reg.envelope(2, 0.5) > 0.5 * reg.envelope(1, 0.5)

    def test_sidebands_under_modulating_activity(self):
        power = make_regulator().render(GRID, dram_alternation())
        carrier_region = power[GRID.index_of(310e3) : GRID.index_of(320e3)].max()
        sideband_region = power[GRID.index_of(356e3) : GRID.index_of(361e3)].max()
        assert sideband_region > 0
        assert carrier_region > sideband_region

    def test_unmodulated_by_core_activity(self):
        activity = AlternationActivity(
            falt=43.3e3, levels_x={CORE: 0.9}, levels_y={CORE: 0.1}
        )
        assert not make_regulator().is_modulated_by(activity)

    def test_gaussian_carrier_shape(self):
        """RC oscillator -> Gaussian-looking hump (Figure 12)."""
        power = make_regulator(fractional_sigma=2e-3).render(
            GRID, AlternationActivity.constant({DRAM_POWER: 0.5})
        )
        center = GRID.index_of(315e3)
        assert power[center] > power[center + 10] > power[center + 20]

    def test_validation(self):
        with pytest.raises(SystemModelError):
            make_regulator(output_volts=15.0)  # output above input
        with pytest.raises(SystemModelError):
            make_regulator(duty_gain=-0.1)
        with pytest.raises(SystemModelError):
            make_regulator(output_volts=11.0, duty_gain=0.2)  # duty > 1 at load
        with pytest.raises(SystemModelError):
            make_regulator().duty_cycle_at(1.5)
        with pytest.raises(SystemModelError):
            make_regulator(current_gain=-0.5)

    def test_current_gain_adds_modulation(self):
        """Switched-current AM: the envelope scales with the load current
        even when the duty cycle barely responds (high conversion ratios)."""
        duty_only = make_regulator(
            input_volts=1.8, output_volts=1.05, duty_gain=0.0, current_gain=0.0
        )
        with_current = make_regulator(
            input_volts=1.8, output_volts=1.05, duty_gain=0.0, current_gain=1.0
        )
        assert duty_only.envelope(1, 0.9) == duty_only.envelope(1, 0.1)
        assert with_current.envelope(1, 0.9) > 1.5 * with_current.envelope(1, 0.1)

    def test_current_gain_default_off(self):
        """The paper's described mechanism is PWM; the current term is an
        explicit opt-in so the calibrated presets are unaffected."""
        assert make_regulator().current_gain == 0.0


class TestConstantOnTimeRegulator:
    def make_cot(self, **kwargs):
        defaults = dict(
            name="cot",
            nominal_frequency=300e3,
            domain=CORE,
            fundamental_dbm=-104.0,
            input_volts=19.0,
            output_volts=1.1,
            duty_gain=0.06,
        )
        defaults.update(kwargs)
        return ConstantOnTimeRegulator(**defaults)

    def test_frequency_rises_with_load(self):
        """Fixed on-time + higher duty -> shorter period -> higher frequency."""
        cot = self.make_cot()
        assert cot.frequency_at(1.0) > cot.frequency_at(0.0)

    def test_nominal_frequency_at_zero_load(self):
        cot = self.make_cot()
        assert cot.frequency_at(0.0) == pytest.approx(300e3)

    def test_is_modulated_by_core_activity(self):
        """It IS activity-modulated (FM) — just not AM."""
        activity = AlternationActivity(
            falt=43.3e3, levels_x={CORE: 0.9}, levels_y={CORE: 0.1}
        )
        assert self.make_cot().is_modulated_by(activity)

    def test_renders_two_dwell_humps(self):
        activity = AlternationActivity(
            falt=43.3e3, levels_x={CORE: 1.0}, levels_y={CORE: 0.0}
        )
        cot = self.make_cot()
        power = cot.render(GRID, activity)
        f_low, f_high = cot.frequency_at(0.0), cot.frequency_at(1.0)
        assert power[GRID.index_of(f_low)] > 0
        assert power[GRID.index_of(f_high)] > 0

    def test_no_falt_sidebands(self):
        """The key property: an incoherent FM carrier leaves no falt comb,
        so FASE (correctly) does not report it. The spectrum around
        fc + falt must be smooth (the dwell hump's tail), with no narrow
        line sticking out at the alternation offset."""
        cot = self.make_cot()
        alternating = cot.render(
            GRID,
            AlternationActivity(falt=43.3e3, levels_x={CORE: 1.0}, levels_y={CORE: 0.0}),
        )
        f_high = cot.frequency_at(1.0)
        sideband_bin = GRID.index_of(f_high + 43.3e3)
        window = alternating[sideband_bin - 20 : sideband_bin + 21]
        assert np.ptp(window) < 0.1 * window.mean()

    def test_validation(self):
        with pytest.raises(SystemModelError):
            self.make_cot(output_volts=20.0)
        with pytest.raises(SystemModelError):
            self.make_cot().frequency_at(-0.5)
