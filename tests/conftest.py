"""Shared fixtures.

Campaign runs over the paper's full 0-4 MHz grid cost ~0.5 s each; the
expensive ones are session-scoped so the whole suite reuses them. Seeds are
fixed so every assertion is reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FaseConfig,
    MeasurementCampaign,
    MicroOp,
    campaign_low_band,
    corei7_desktop,
    turionx2_laptop,
)
from repro.core import CarrierDetector
from repro.system import build_environment


@pytest.fixture(scope="session")
def i7():
    """The paper's main platform with a fixed environment realization."""
    return corei7_desktop(rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def i7_quiet():
    """The i7 in a shielded chamber: system emitters only."""
    return corei7_desktop(environment=build_environment(4e6, kind="quiet"), rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def turion():
    return turionx2_laptop(rng=np.random.default_rng(2))


@pytest.fixture(scope="session")
def low_band_config():
    return campaign_low_band()


def _run_campaign(machine, config, op_x, op_y, label, seed=1):
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(seed))
    return campaign.run(op_x, op_y, label=label)


@pytest.fixture(scope="session")
def i7_ldm_ldl1(i7, low_band_config):
    """LDM/LDL1 campaign result on the i7 (memory modulation, Fig. 11)."""
    return _run_campaign(i7, low_band_config, MicroOp.LDM, MicroOp.LDL1, "LDM/LDL1")


@pytest.fixture(scope="session")
def i7_ldl2_ldl1(i7, low_band_config):
    """LDL2/LDL1 campaign result on the i7 (on-chip modulation, Fig. 13)."""
    return _run_campaign(i7, low_band_config, MicroOp.LDL2, MicroOp.LDL1, "LDL2/LDL1")


@pytest.fixture(scope="session")
def i7_null(i7, low_band_config):
    """LDL1/LDL1 control: no alternation contrast, nothing modulated."""
    return _run_campaign(i7, low_band_config, MicroOp.LDL1, MicroOp.LDL1, "LDL1/LDL1")


@pytest.fixture(scope="session")
def i7_detections(i7_ldm_ldl1):
    return CarrierDetector().detect(i7_ldm_ldl1)


@pytest.fixture(scope="session")
def i7_onchip_detections(i7_ldl2_ldl1):
    return CarrierDetector().detect(i7_ldl2_ldl1)


@pytest.fixture(scope="session")
def dram_clock_window_config():
    """The Fig. 15/16 window around the 333 MHz DRAM clock."""
    return FaseConfig(
        span_low=329e6,
        span_high=336e6,
        fres=2e3,
        falt1=180e3,
        f_delta=10e3,
        name="DRAM clock window",
    )


@pytest.fixture(scope="session")
def i7_hf(dram_clock_window_config):
    """The i7 with an environment spanning the DRAM clock band."""
    return corei7_desktop(
        environment=build_environment(340e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
