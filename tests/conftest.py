"""Shared fixtures.

Campaign runs over the paper's full 0-4 MHz grid cost ~0.5 s each; the
expensive ones are session-scoped so the whole suite reuses them. Seeds are
fixed so every assertion is reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FaseConfig,
    MeasurementCampaign,
    MicroOp,
    campaign_low_band,
    corei7_desktop,
    turionx2_laptop,
)
from repro.core import CarrierDetector
from repro.core.campaign import CampaignMeasurement, CampaignResult
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.trace import SpectrumTrace
from repro.system import ALL_PRESETS, build_environment
from repro.uarch.activity import AlternationActivity


@pytest.fixture(scope="session")
def i7():
    """The paper's main platform with a fixed environment realization."""
    return corei7_desktop(rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def i7_quiet():
    """The i7 in a shielded chamber: system emitters only."""
    return corei7_desktop(environment=build_environment(4e6, kind="quiet"), rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def turion():
    return turionx2_laptop(rng=np.random.default_rng(2))


@pytest.fixture(scope="session")
def low_band_config():
    return campaign_low_band()


def _run_campaign(machine, config, op_x, op_y, label, seed=1):
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(seed))
    return campaign.run(op_x, op_y, label=label)


@pytest.fixture(scope="session")
def i7_ldm_ldl1(i7, low_band_config):
    """LDM/LDL1 campaign result on the i7 (memory modulation, Fig. 11)."""
    return _run_campaign(i7, low_band_config, MicroOp.LDM, MicroOp.LDL1, "LDM/LDL1")


@pytest.fixture(scope="session")
def i7_ldl2_ldl1(i7, low_band_config):
    """LDL2/LDL1 campaign result on the i7 (on-chip modulation, Fig. 13)."""
    return _run_campaign(i7, low_band_config, MicroOp.LDL2, MicroOp.LDL1, "LDL2/LDL1")


@pytest.fixture(scope="session")
def i7_null(i7, low_band_config):
    """LDL1/LDL1 control: no alternation contrast, nothing modulated."""
    return _run_campaign(i7, low_band_config, MicroOp.LDL1, MicroOp.LDL1, "LDL1/LDL1")


@pytest.fixture(scope="session")
def i7_detections(i7_ldm_ldl1):
    return CarrierDetector().detect(i7_ldm_ldl1)


@pytest.fixture(scope="session")
def i7_onchip_detections(i7_ldl2_ldl1):
    return CarrierDetector().detect(i7_ldl2_ldl1)


@pytest.fixture(scope="session")
def machine_factory():
    """Cached preset-machine builder: ``machine_factory(preset, span, kind, ...)``.

    Campaign tests used to copy-paste the same two lines — build an
    environment with one seed, a preset with another — with tiny
    variations. The factory centralizes that and caches by parameters, so
    tests asking for the same machine share one instance (machines are
    immutable during capture; sharing is safe).
    """
    cache = {}

    def build(preset="corei7_desktop", span=2e6, kind="metropolitan", env_seed=0, seed=0):
        key = (preset, span, kind, env_seed, seed)
        if key not in cache:
            environment = build_environment(span, kind=kind, rng=np.random.default_rng(env_seed))
            cache[key] = ALL_PRESETS[preset](
                environment=environment, rng=np.random.default_rng(seed)
            )
        return cache[key]

    return build


@pytest.fixture(scope="session")
def campaign_factory(machine_factory):
    """Cached campaign runner over factory-built machines.

    ``campaign_factory(pair=(MicroOp.LDM, MicroOp.LDL1), span=2e6, ...)``
    returns a :class:`CampaignResult`. Clean runs are cached by their full
    parameter set; fault-plan runs are never cached (plans are stateful
    and tests usually want fresh robustness reports). Extra keyword
    arguments go to :class:`FaseConfig`.
    """
    cache = {}

    def run(
        pair=(MicroOp.LDM, MicroOp.LDL1),
        preset="corei7_desktop",
        span=2e6,
        kind="metropolitan",
        env_seed=0,
        machine_seed=0,
        seed=1,
        label=None,
        fault_plan=None,
        **config_kwargs,
    ):
        machine = machine_factory(
            preset=preset, span=span, kind=kind, env_seed=env_seed, seed=machine_seed
        )
        label = label or f"{pair[0].value}/{pair[1].value}"
        key = None
        if fault_plan is None:
            key = (pair, preset, span, kind, env_seed, machine_seed, seed, label,
                   tuple(sorted(config_kwargs.items())))
            if key in cache:
                return cache[key]
        config_kwargs.setdefault("span_low", 0.0)
        config_kwargs.setdefault("span_high", span)
        config_kwargs.setdefault("fres", 100.0)
        config_kwargs.setdefault("name", "test campaign")
        config = FaseConfig(**config_kwargs)
        campaign = MeasurementCampaign(
            machine, config, rng=np.random.default_rng(seed), fault_plan=fault_plan
        )
        result = campaign.run(pair[0], pair[1], label=label)
        if key is not None:
            cache[key] = result
        return result

    return run


@pytest.fixture(scope="session")
def synthetic_campaign():
    """Factory for campaign results built from hand-placed spectral features.

    ``synthetic_campaign(carrier=500e3)`` plants side-bands that move with
    each trace's falt; ``static_tone`` plants a strong line that does NOT
    move; ``flagged`` marks measurement indices as screen-flagged (for
    degraded-mode tests). The factory is pure (a fresh result per call, so
    tests may mutate traces) and exposes ``.grid``, ``.falts`` and
    ``.config`` for assertions.
    """
    grid = FrequencyGrid(0.0, 1e6, 100.0)
    falts = (43.3e3, 43.8e3, 44.3e3, 44.8e3, 45.3e3)
    config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="synthetic")

    def build(
        carrier=None,
        sideband_level=1e-11,
        static_tone=None,
        floor=1e-15,
        seed=0,
        flagged=(),
        falts_override=None,
    ):
        rng = np.random.default_rng(seed)
        use_falts = tuple(falts_override) if falts_override is not None else falts
        measurements = []
        for index, falt in enumerate(use_falts):
            power = np.full(grid.n_bins, floor) * rng.gamma(4.0, 0.25, grid.n_bins)
            if carrier is not None:
                power[grid.index_of(carrier)] += 100 * sideband_level
                for sign in (+1, -1):
                    f = carrier + sign * falt
                    if grid.contains(f):
                        power[grid.index_of(f)] += sideband_level
            if static_tone is not None:
                power[grid.index_of(static_tone)] += 1e-9
            trace = SpectrumTrace(grid, power)
            activity = AlternationActivity(falt=falt, levels_x={}, levels_y={})
            measurements.append(
                CampaignMeasurement(
                    falt=falt, activity=activity, trace=trace, flagged=index in flagged
                )
            )
        return CampaignResult(
            config=config, machine_name="synthetic", activity_label="synthetic",
            measurements=measurements,
        )

    build.grid = grid
    build.falts = falts
    build.config = config
    return build


@pytest.fixture(scope="session")
def dram_clock_window_config():
    """The Fig. 15/16 window around the 333 MHz DRAM clock."""
    return FaseConfig(
        span_low=329e6,
        span_high=336e6,
        fres=2e3,
        falt1=180e3,
        f_delta=10e3,
        name="DRAM clock window",
    )


@pytest.fixture(scope="session")
def i7_hf(dram_clock_window_config):
    """The i7 with an environment spanning the DRAM clock band."""
    return corei7_desktop(
        environment=build_environment(340e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
