"""Durable campaign execution: journal, watchdog, resume, salvage.

Everything here runs on a tiny stub machine (201-bin grid, static scenes)
so the suite exercises the durability machinery, not the simulator. The
invariant under test throughout: durable captures are pure functions of
(seed, index, attempt), so a run killed anywhere and resumed equals an
uninterrupted run exactly.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import DurableCampaign, FaseConfig, MeasurementCampaign
from repro.errors import (
    CampaignError,
    CaptureTimeoutError,
    DegradedCampaignError,
    JournalError,
)
from repro.runner import (
    JOURNAL_FORMAT,
    MAX_BACKOFF_S,
    CampaignJournal,
    CaptureWatchdog,
    backoff_delay,
    campaign_fingerprint,
    recover_campaign,
)
from repro.spectrum.analyzer import StaticScene
from repro.uarch.activity import AlternationActivity

pytestmark = pytest.mark.runner

FALTS = (1000.0, 1250.0, 1500.0, 1750.0, 2000.0)


def make_config(**overrides):
    overrides.setdefault("span_low", 0.0)
    overrides.setdefault("span_high", 2e4)
    overrides.setdefault("fres", 100.0)
    overrides.setdefault("name", "runner test")
    return FaseConfig(**overrides)


def make_activities(falts=FALTS):
    return [AlternationActivity(falt=falt, levels_x={}, levels_y={}) for falt in falts]


class StubMachine:
    """Millisecond-cheap machine: one static line per activity's falt."""

    name = "stub machine"

    def scene(self, activity):
        def power(grid):
            out = np.full(grid.n_bins, 1e-12)
            out[grid.index_of(activity.falt)] += 1e-9
            return out

        return StaticScene(power)


class KillAfter:
    """Raise KeyboardInterrupt on the (n+1)-th scene build: a mid-run kill."""

    def __init__(self, machine, n):
        self._machine = machine
        self._n = n
        self.count = 0

    @property
    def name(self):
        return self._machine.name

    def scene(self, activity):
        if self.count >= self._n:
            raise KeyboardInterrupt("simulated kill")
        self.count += 1
        return self._machine.scene(activity)


class HangAt:
    """Hang (sleep) instead of returning a scene for the given falts."""

    def __init__(self, machine, hang_falts, hang_s=5.0, hang_attempts=None):
        self._machine = machine
        self._hang_falts = set(hang_falts)
        self._hang_s = hang_s
        self._hang_attempts = hang_attempts  # None: hang every attempt
        self._calls = {}

    @property
    def name(self):
        return self._machine.name

    def scene(self, activity):
        if activity.falt in self._hang_falts:
            seen = self._calls.get(activity.falt, 0)
            self._calls[activity.falt] = seen + 1
            if self._hang_attempts is None or seen < self._hang_attempts:
                time.sleep(self._hang_s)
        return self._machine.scene(activity)


def durable(journal_dir, machine=None, config=None, seed=1, **kwargs):
    kwargs.setdefault("sleep", lambda _: None)
    return DurableCampaign(
        machine or StubMachine(),
        config or make_config(),
        journal_dir=journal_dir,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


def assert_same_result(a, b):
    assert a.falts == b.falts
    assert len(a.measurements) == len(b.measurements)
    for ours, theirs in zip(a.measurements, b.measurements):
        np.testing.assert_array_equal(ours.trace.power_mw, theirs.trace.power_mw)
        assert ours.flagged == theirs.flagged


class TestBackoff:
    def test_doubles_per_retry(self):
        assert [backoff_delay(r, 0.5) for r in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 4.0]

    def test_capped(self):
        assert backoff_delay(50, 0.5) == MAX_BACKOFF_S
        assert backoff_delay(3, 10.0, cap_s=15.0) == 15.0

    def test_zero_base_or_retry_disables(self):
        assert backoff_delay(3, 0.0) == 0.0
        assert backoff_delay(0, 0.5) == 0.0


class TestWatchdog:
    def test_disabled_is_a_direct_call(self):
        assert CaptureWatchdog(None).run(lambda: 42) == 42

    def test_result_returned_under_deadline(self):
        assert CaptureWatchdog(5.0).run(lambda: "ok") == "ok"

    def test_exceptions_propagate_unchanged(self):
        with pytest.raises(ValueError, match="inner"):
            CaptureWatchdog(5.0).run(lambda: (_ for _ in ()).throw(ValueError("inner")))

    def test_hung_call_abandoned_at_deadline(self):
        start = time.monotonic()
        with pytest.raises(CaptureTimeoutError) as info:
            CaptureWatchdog(0.05).run(lambda: time.sleep(5.0), index=3, attempt=1)
        assert time.monotonic() - start < 2.0
        assert info.value.index == 3
        assert info.value.attempt == 1

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            CaptureWatchdog(0.0)


class TestJournal:
    def fingerprint(self, config=None, seed=1):
        return campaign_fingerprint(
            config or make_config(), "stub machine", "pair", np.random.default_rng(seed)
        )

    def create(self, tmp_path, config=None):
        config = config or make_config()
        journal = CampaignJournal(tmp_path / "journal")
        journal.create(self.fingerprint(config), config, "stub machine", "pair", FALTS)
        return journal

    def test_create_open_roundtrip(self, tmp_path):
        config = make_config()
        journal = self.create(tmp_path, config)
        assert journal.exists()
        reopened = CampaignJournal(tmp_path / "journal").open(self.fingerprint(config))
        assert reopened.config() == config
        assert reopened.header["format"] == JOURNAL_FORMAT
        assert reopened.header["falts"] == list(FALTS)

    def test_open_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            CampaignJournal(tmp_path / "nope").open()

    def test_fingerprint_mismatch_refused(self, tmp_path):
        self.create(tmp_path)
        with pytest.raises(JournalError, match="different campaign"):
            CampaignJournal(tmp_path / "journal").open(self.fingerprint(seed=99))

    def test_unsupported_format_refused(self, tmp_path):
        journal = self.create(tmp_path)
        header = json.loads((journal.directory / "HEADER.json").read_text())
        header["format"] = "fase-journal-v999"
        (journal.directory / "HEADER.json").write_text(json.dumps(header))
        with pytest.raises(JournalError, match="format"):
            CampaignJournal(journal.directory).open()

    def test_fingerprint_ignores_runtime_knobs(self):
        base = self.fingerprint(make_config())
        tuned = self.fingerprint(
            make_config(n_workers=4, max_capture_retries=5, capture_timeout_s=1.0,
                        retry_backoff_s=0.01)
        )
        assert base == tuned
        assert base != self.fingerprint(make_config(fres=50.0))

    def _append(self, journal, index, attempt=0, falt=None, power=None):
        grid = make_config().grid()
        activity = AlternationActivity(
            falt=FALTS[index] if falt is None else falt, levels_x={}, levels_y={}
        )
        from repro.spectrum.trace import SpectrumTrace

        trace = SpectrumTrace(
            grid,
            np.full(grid.n_bins, 1e-12) if power is None else power,
            label=f"capture {index}",
        )
        journal.append(index, attempt, activity, trace)
        return trace

    def test_records_take_highest_attempt(self, tmp_path):
        journal = self.create(tmp_path)
        grid = make_config().grid()
        self._append(journal, 0, attempt=0)
        best = self._append(journal, 0, attempt=2, power=np.full(grid.n_bins, 2e-12))
        records = journal.records(grid)
        assert set(records) == {0}
        assert records[0].attempt == 2
        np.testing.assert_array_equal(records[0].trace.power_mw, best.power_mw)

    def test_resumed_traces_reference_checkpoint_files(self, tmp_path):
        """Records are written uncompressed so resume *references* each
        checkpoint file through a read-only memmap instead of copying the
        trace onto the heap."""
        journal = self.create(tmp_path)
        grid = make_config().grid()
        written = self._append(journal, 0)
        records = journal.records(grid)
        power = records[0].trace.power_mw
        # Zero-copy: the trace is a read-only view whose buffer is the
        # mapped checkpoint file, not a heap copy.
        assert not power.flags.owndata
        assert not power.flags.writeable
        import mmap as _mmap

        base = power
        while isinstance(base, np.ndarray) and base.base is not None:
            if isinstance(base, np.memmap):
                break
            base = base.base
        assert isinstance(base, (np.memmap, _mmap.mmap))
        np.testing.assert_array_equal(power, written.power_mw)
        # Opting out still round-trips exactly, on the heap (writable,
        # no mapped buffer underneath).
        eager = journal.records(grid, mmap=False)
        assert eager[0].trace.power_mw.flags.writeable
        np.testing.assert_array_equal(eager[0].trace.power_mw, written.power_mw)

    def test_legacy_compressed_records_still_load(self, tmp_path):
        """Records written by earlier versions (np.savez_compressed) fail
        the mmap fast path and fall back to a heap copy, checksum and all."""
        journal = self.create(tmp_path)
        grid = make_config().grid()
        written = self._append(journal, 0)
        path = journal.directory / "record-00000-a0.npz"
        with np.load(path, allow_pickle=False) as archive:
            meta = str(archive["meta"])
            power = np.asarray(archive["power"])
        np.savez_compressed(path, meta=meta, power=power)
        records = journal.records(grid)
        assert set(records) == {0}
        assert not isinstance(records[0].trace.power_mw, np.memmap)
        np.testing.assert_array_equal(records[0].trace.power_mw, written.power_mw)

    def test_truncated_record_skipped(self, tmp_path):
        journal = self.create(tmp_path)
        grid = make_config().grid()
        self._append(journal, 0)
        self._append(journal, 1)
        victim = journal.directory / "record-00001-a0.npz"
        victim.write_bytes(victim.read_bytes()[:100])
        assert set(journal.records(grid)) == {0}

    def test_garbage_and_tmp_files_ignored(self, tmp_path):
        journal = self.create(tmp_path)
        grid = make_config().grid()
        self._append(journal, 2)
        (journal.directory / "record-00003-a0.npz").write_bytes(b"not an archive")
        (journal.directory / "record-00004-a0.npz.tmp").write_bytes(b"half a write")
        (journal.directory / "notes.txt").write_text("unrelated")
        assert set(journal.records(grid)) == {2}

    def test_checksum_mismatch_skipped(self, tmp_path):
        journal = self.create(tmp_path)
        grid = make_config().grid()
        self._append(journal, 0)
        path = journal.directory / "record-00000-a0.npz"
        with np.load(path, allow_pickle=False) as archive:
            meta = str(archive["meta"])
            power = np.asarray(archive["power"]) * 3.0  # silent corruption
        np.savez_compressed(path, meta=meta, power=power)
        assert journal.records(grid) == {}

    def test_wrong_grid_shape_skipped(self, tmp_path):
        journal = self.create(tmp_path)
        self._append(journal, 0)
        other_grid = make_config(span_high=4e4).grid()
        assert journal.records(other_grid) == {}

    def test_discard_removes_directory(self, tmp_path):
        journal = self.create(tmp_path)
        journal.discard()
        assert not journal.exists()
        assert not journal.directory.exists()


class TestDurableResume:
    def test_clean_durable_run_equals_parallel_clean_run(self, tmp_path):
        campaign = durable(tmp_path / "j")
        result = campaign.run_with_activities(make_activities(), label="pair")
        clean = MeasurementCampaign(
            StubMachine(), make_config(n_workers=2), rng=np.random.default_rng(1)
        ).run_with_activities(make_activities(), label="pair")
        assert_same_result(result, clean)
        assert result.robustness is None
        assert campaign.resumed_indices == ()

    @pytest.mark.parametrize("kill_after", range(5))
    def test_kill_anywhere_then_resume_is_identical(self, tmp_path, kill_after):
        reference = durable(tmp_path / "ref").run_with_activities(
            make_activities(), label="pair"
        )
        journal_dir = tmp_path / "j"
        with pytest.raises(KeyboardInterrupt):
            durable(journal_dir, machine=KillAfter(StubMachine(), kill_after)).run_with_activities(
                make_activities(), label="pair"
            )
        campaign = durable(journal_dir)
        resumed = campaign.run_with_activities(make_activities(), label="pair")
        assert_same_result(resumed, reference)
        assert campaign.resumed_indices == tuple(range(kill_after))
        assert resumed.robustness is None

    def test_resume_false_refuses_existing_journal(self, tmp_path):
        durable(tmp_path / "j").run_with_activities(make_activities(), label="pair")
        with pytest.raises(JournalError, match="--resume"):
            durable(tmp_path / "j", resume=False).run_with_activities(
                make_activities(), label="pair"
            )

    def test_resume_with_different_seed_refused(self, tmp_path):
        durable(tmp_path / "j", seed=1).run_with_activities(make_activities(), label="pair")
        with pytest.raises(JournalError, match="fingerprint"):
            durable(tmp_path / "j", seed=2).run_with_activities(make_activities(), label="pair")

    def test_stale_falt_record_recaptured(self, tmp_path):
        """A journaled capture whose falt no longer matches the plan is redone."""
        durable(tmp_path / "j").run_with_activities(make_activities(), label="pair")
        shifted = list(FALTS)
        shifted[2] += 50.0
        campaign = durable(tmp_path / "j")
        result = campaign.run_with_activities(make_activities(shifted), label="pair")
        assert campaign.resumed_indices == (0, 1, 3, 4)
        assert result.falts[2] == shifted[2]

    def test_completed_journal_resumes_without_touching_the_machine(self, tmp_path):
        durable(tmp_path / "j").run_with_activities(make_activities(), label="pair")
        untouchable = KillAfter(StubMachine(), 0)  # any scene() call would raise
        campaign = durable(tmp_path / "j", machine=untouchable)
        result = campaign.run_with_activities(make_activities(), label="pair")
        assert campaign.resumed_indices == (0, 1, 2, 3, 4)
        assert len(result.measurements) == 5


class TestTimeoutsAndSalvage:
    def timeout_config(self, **overrides):
        overrides.setdefault("capture_timeout_s", 0.2)
        overrides.setdefault("retry_backoff_s", 0.25)
        return make_config(**overrides)

    def test_transient_hang_retried_and_recovered(self, tmp_path):
        delays = []
        machine = HangAt(StubMachine(), {FALTS[1]}, hang_attempts=1)
        campaign = durable(
            tmp_path / "j", machine=machine, config=self.timeout_config(),
            sleep=delays.append,
        )
        result = campaign.run_with_activities(make_activities(), label="pair")
        assert len(result.measurements) == 5
        report = result.robustness
        assert report.n_timeouts == 1
        assert report.n_injected == 0
        assert report.retries == {1: 1}
        assert report.dropped == ()
        assert delays == [0.25]
        assert "capture timeouts: 1" in report.to_text()

    def test_persistent_hang_dropped_and_salvaged(self, tmp_path):
        delays = []
        machine = HangAt(StubMachine(), {FALTS[2]})
        start = time.monotonic()
        campaign = durable(
            tmp_path / "j", machine=machine, config=self.timeout_config(),
            sleep=delays.append,
        )
        result = campaign.run_with_activities(make_activities(), label="pair")
        elapsed = time.monotonic() - start
        # 3 attempts x 0.2 s deadline plus slack: the hung analyzer never
        # holds the campaign past its watchdog budget.
        assert elapsed < 3.0
        assert len(result.measurements) == 4
        assert tuple(result.falts) == (FALTS[0], FALTS[1], FALTS[3], FALTS[4])
        report = result.robustness
        assert report.n_timeouts == 3  # initial + 2 retries, all abandoned
        assert report.dropped == (2,)
        assert report.excluded[2] == ("capture failed on all 3 attempt(s)",)
        assert delays == [0.25, 0.5]  # bounded exponential backoff
        assert "capture 2 dropped" in report.to_text()

    def test_resume_after_salvage_recaptures_only_the_dropped_index(self, tmp_path):
        machine = HangAt(StubMachine(), {FALTS[2]})
        durable(
            tmp_path / "j", machine=machine, config=self.timeout_config()
        ).run_with_activities(make_activities(), label="pair")
        campaign = durable(tmp_path / "j", config=self.timeout_config())
        result = campaign.run_with_activities(make_activities(), label="pair")
        assert campaign.resumed_indices == (0, 1, 3, 4)
        assert len(result.measurements) == 5
        reference = durable(tmp_path / "ref").run_with_activities(
            make_activities(), label="pair"
        )
        # Index 2 was recaptured on attempt 0's stream: same trace as an
        # undisturbed run.
        np.testing.assert_array_equal(
            result.measurements[2].trace.power_mw,
            reference.measurements[2].trace.power_mw,
        )

    def test_everything_hanging_raises_degraded(self, tmp_path):
        machine = HangAt(StubMachine(), set(FALTS))
        config = self.timeout_config(capture_timeout_s=0.05)
        with pytest.raises(DegradedCampaignError) as info:
            durable(tmp_path / "j", machine=machine, config=config).run_with_activities(
                make_activities(), label="pair"
            )
        assert info.value.robustness.dropped == (0, 1, 2, 3, 4)

    def test_min_good_captures_validated(self, tmp_path):
        with pytest.raises(CampaignError):
            durable(tmp_path / "j", min_good_captures=1)


class TestRecovery:
    def test_recover_campaign_from_journal(self, tmp_path):
        result = durable(tmp_path / "j").run_with_activities(make_activities(), label="pair")
        recovered = recover_campaign(tmp_path / "j")
        assert recovered.machine_name == "stub machine"
        assert recovered.activity_label == "pair"
        assert recovered.config == make_config()
        assert_same_result(recovered, result)

    def test_recover_needs_two_records(self, tmp_path):
        journal_dir = tmp_path / "j"
        with pytest.raises(KeyboardInterrupt):
            durable(journal_dir, machine=KillAfter(StubMachine(), 1)).run_with_activities(
                make_activities(), label="pair"
            )
        with pytest.raises(JournalError, match="at least two"):
            recover_campaign(journal_dir)


class TestDurableWithFaultPlan:
    def test_fault_plan_run_resumes_identically(self, tmp_path):
        from repro.faults import FaultPlan

        def run(journal_dir, machine=None):
            campaign = durable(
                journal_dir,
                machine=machine,
                config=make_config(max_capture_retries=2),
                fault_plan=FaultPlan.default(("glitch",)),
            )
            return campaign, campaign.run_with_activities(make_activities(), label="pair")

        _, reference = run(tmp_path / "ref")
        with pytest.raises(KeyboardInterrupt):
            run(tmp_path / "j", machine=KillAfter(StubMachine(), 3))
        campaign, resumed = run(tmp_path / "j")
        assert set(campaign.resumed_indices) >= {0, 1, 2}
        assert_same_result(resumed, reference)
        ours, theirs = resumed.robustness, reference.robustness
        assert ours.retries == theirs.retries
        assert ours.excluded == theirs.excluded
        assert [e.fault for e in ours.events] == [e.fault for e in theirs.events]
