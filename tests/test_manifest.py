"""The survey manifest: serialization fidelity, identity, damage tolerance.

The manifest's contract has three legs, each tested here at the unit
level (the ``chaos`` tier in ``test_chaos.py`` attacks the same contract
end to end): a restored :class:`~repro.survey.ShardResult` compares
*equal* to the original (JSON floats round-trip exactly, which is what
lets resume assert byte-identical reports); a manifest can never be
spliced into the wrong survey (plan fingerprint in the header); and a
mutilated log — torn tail, corrupt interior line, disk that stopped
accepting writes — degrades coverage or durability, never correctness.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import FaseConfig, MicroOp, run_survey
from repro.core.detect import CarrierDetection
from repro.core.harmonics import HarmonicSet
from repro.core.report import ActivityReport
from repro.errors import ManifestError
from repro.survey import (
    DURABILITY_DEGRADED,
    MANIFEST_FORMAT,
    SurveyManifest,
    plan_fingerprint,
    plan_shards,
    recover_survey_report,
    run_shard,
)
from repro.survey.chaos import (
    count_attempts,
    count_records,
    manifest_disk_full,
    torn_manifest_tail,
    well_behaved_shard,
)
from repro.survey.manifest import shard_result_from_dict, shard_result_to_dict
from repro.survey.shards import ShardResult
from repro.telemetry import Recorder, Telemetry

pytestmark = pytest.mark.survey

#: Small but real: 2000-bin grid with a populated low band.
SMALL = FaseConfig(
    span_low=0.0, span_high=1e6, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
    name="manifest test",
)
ONE_PAIR = ((MicroOp.LDM, MicroOp.LDL1),)


def _scratch_config(base):
    """A tiny config whose ``name`` smuggles the scratch dir to stubs."""
    return FaseConfig(
        span_low=0.0, span_high=1e5, fres=50.0, falt1=43.3e3, f_delta=1e3, name=str(base)
    )


def _stub_plan(base):
    return dict(
        machines=("corei7_desktop", "turionx2_laptop"),
        pairs=ONE_PAIR,
        config=_scratch_config(base),
    )


# ----------------------------------------------------------------------
# ShardResult (de)serialization.


class TestShardResultRoundTrip:
    def test_handcrafted_result_with_numpy_scalars(self):
        """np.float64 values serialize to JSON and restore comparing equal;
        harmonic-set members restore by index (identity into the
        detections list) or inline."""
        detections = [
            CarrierDetection(
                frequency=np.float64(315e3),
                combined_score=np.float64(4.25),
                harmonic_scores={1: np.float64(2.5), 3: np.float64(1.75)},
                magnitude_dbm=np.float64(-41.125),
                modulation_depth=np.float64(0.625),
                activity_label="LDM/LDL1",
            ),
            CarrierDetection(
                frequency=630e3,
                combined_score=2.0,
                harmonic_scores={1: 2.0},
                magnitude_dbm=-55.5,
                modulation_depth=0.25,
                activity_label="LDM/LDL1",
            ),
        ]
        foreign = CarrierDetection(
            frequency=945e3, combined_score=1.0, harmonic_scores={},
            magnitude_dbm=-60.0, modulation_depth=0.1, activity_label="LDM/LDL1",
        )
        sets = [
            HarmonicSet(
                fundamental=315e3,
                members=((1, detections[0]), (2, detections[1]), (3, foreign)),
            )
        ]
        original = ShardResult(
            shard_id="corei7_desktop|LDM-LDL1|full",
            machine="corei7_desktop",
            machine_name="Core i7 desktop",
            config_description="manifest round-trip fixture",
            pair_label="LDM/LDL1",
            band="full",
            is_memory_pair=True,
            activity=ActivityReport(
                activity_label="LDM/LDL1", detections=detections, harmonic_sets=sets
            ),
            metrics={"counters": {"captures_total": 5}, "gauges": {}, "histograms": {}},
        )
        payload = shard_result_to_dict(original)
        json.dumps(payload)  # must already be JSON-clean, numpy included
        restored = shard_result_from_dict(json.loads(json.dumps(payload)))
        assert restored.activity.detections == original.activity.detections
        assert restored.activity.harmonic_sets == original.activity.harmonic_sets
        assert restored.metrics == original.metrics
        # Index-encoded members restore to the *same objects* as the
        # restored detections list, preserving the original aliasing.
        restored_set = restored.activity.harmonic_sets[0]
        assert restored_set.members[0][1] is restored.activity.detections[0]
        assert restored_set.members[2][1] == foreign

    def test_real_shard_result_round_trips_equal(self):
        [spec] = plan_shards(machines=("corei7_desktop",), pairs=ONE_PAIR, config=SMALL)
        original = run_shard(spec)
        assert original.activity.detections  # fixture must be non-trivial
        restored = shard_result_from_dict(
            json.loads(json.dumps(shard_result_to_dict(original)))
        )
        assert restored.activity.detections == original.activity.detections
        assert restored.activity.harmonic_sets == original.activity.harmonic_sets
        assert restored.shard_id == original.shard_id
        assert restored.spectra is None  # spectra are deliberately stripped


# ----------------------------------------------------------------------
# Plan identity: the fingerprint and what it guards.


class TestPlanFingerprint:
    def test_sensitive_to_seed_and_plan_not_runtime_knobs(self):
        specs = plan_shards(machines=("corei7_desktop",), pairs=ONE_PAIR, config=SMALL)
        baseline = plan_fingerprint(specs)
        reseeded = plan_shards(
            machines=("corei7_desktop",), pairs=ONE_PAIR, config=SMALL, seed=1
        )
        assert plan_fingerprint(reseeded) != baseline
        # keep_spectra / heartbeat paths are runtime knobs, not identity.
        tuned = [
            dataclasses.replace(spec, keep_spectra=True, heartbeat_path="/tmp/hb")
            for spec in specs
        ]
        assert plan_fingerprint(tuned) == baseline

    def test_open_rejects_foreign_fingerprint(self, tmp_path):
        specs = plan_shards(machines=("corei7_desktop",), pairs=ONE_PAIR, config=SMALL)
        manifest = SurveyManifest(tmp_path / "m")
        manifest.create(plan_fingerprint(specs), specs)
        assert manifest.degraded is None
        with pytest.raises(ManifestError, match="different survey plan"):
            SurveyManifest(tmp_path / "m").open("0" * 64)
        # The right fingerprint (and no fingerprint) both open fine.
        assert SurveyManifest(tmp_path / "m").open(plan_fingerprint(specs))
        assert SurveyManifest(tmp_path / "m").open().header["format"] == MANIFEST_FORMAT

    def test_open_missing_and_unreadable_header(self, tmp_path):
        with pytest.raises(ManifestError, match="no survey manifest"):
            SurveyManifest(tmp_path / "absent").open()
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "HEADER.json").write_text("{not json")
        with pytest.raises(ManifestError, match="unreadable"):
            SurveyManifest(bad).open()

    def test_existing_manifest_without_resume_is_refused(self, tmp_path):
        plan = _stub_plan(tmp_path)
        manifest_dir = tmp_path / "manifest"
        run_survey(**plan, shard_fn=well_behaved_shard, manifest_dir=manifest_dir)
        with pytest.raises(ManifestError, match="pass resume=True"):
            run_survey(
                **plan, shard_fn=well_behaved_shard,
                manifest_dir=manifest_dir, resume=False,
            )


# ----------------------------------------------------------------------
# Damage tolerance in the loader and the append path.


class TestDamageTolerance:
    def test_torn_tail_is_dropped_then_sealed_on_next_append(self, tmp_path):
        plan = _stub_plan(tmp_path)
        manifest_dir = tmp_path / "manifest"
        report = run_survey(**plan, shard_fn=well_behaved_shard, manifest_dir=manifest_dir)
        intact = count_records(manifest_dir)
        assert report.n_completed == 2 and intact >= 2

        torn_manifest_tail(manifest_dir)
        state = SurveyManifest(manifest_dir).open().load()
        assert state.torn_tail and state.n_damaged == 0
        assert len(state.results) == 2  # everything before the tear is trusted

        # The first append of a resumed run must seal the fragment into
        # its own line, not weld the fresh record onto the garbage.
        manifest = SurveyManifest(manifest_dir).open()
        manifest.append_ledger({"event": "requeue", "shard_id": "s-after-tear"})
        state = manifest.load()
        assert not state.torn_tail and state.n_damaged == 1
        assert len(state.results) == 2
        assert any(e.get("shard_id") == "s-after-tear" for e in state.ledger_events)

    def test_corrupt_interior_line_is_skipped(self, tmp_path):
        plan = _stub_plan(tmp_path)
        manifest_dir = tmp_path / "manifest"
        run_survey(**plan, shard_fn=well_behaved_shard, manifest_dir=manifest_dir)
        log = manifest_dir / "manifest.jsonl"
        lines = log.read_bytes().splitlines()
        lines[0] = lines[0][:-10] + b'corrupted"'  # checksum now fails
        log.write_bytes(b"".join(line + b"\n" for line in lines))
        state = SurveyManifest(manifest_dir).open().load()
        assert state.n_damaged == 1 and not state.torn_tail
        assert len(state.results) == 1  # the damaged shard simply re-runs

    def test_disk_full_degrades_survey_not_crashes(self, tmp_path):
        """When appends start failing the survey finishes non-durably,
        ledgers the downgrade once, and emits the telemetry event."""
        plan = _stub_plan(tmp_path)
        recorder = Recorder()
        with manifest_disk_full(after=1):
            report = run_survey(
                **plan,
                shard_fn=well_behaved_shard,
                manifest_dir=tmp_path / "manifest",
                telemetry=Telemetry(sinks=[recorder]),
            )
        assert report.n_completed == 2  # every shard still ran
        notes = [n for n in report.ledger.notes if n[1] == DURABILITY_DEGRADED]
        assert len(notes) == 1
        assert "continues non-durably" in notes[0][2]
        events = recorder.events("survey-durability-degraded")
        assert len(events) == 1
        assert "No space left on device" in events[0]["attrs"]["reason"]


# ----------------------------------------------------------------------
# Resume semantics: completed shards are skipped, history replays.


class TestResume:
    def test_resume_skips_completed_shards_and_matches(self, tmp_path):
        plan = _stub_plan(tmp_path)
        manifest_dir = tmp_path / "manifest"
        first = run_survey(**plan, shard_fn=well_behaved_shard, manifest_dir=manifest_dir)
        specs = plan_shards(**plan)
        assert all(count_attempts(tmp_path, s.shard_id) == 1 for s in specs)

        recorder = Recorder()
        second = run_survey(
            **plan,
            shard_fn=well_behaved_shard,
            manifest_dir=manifest_dir,
            telemetry=Telemetry(sinks=[recorder]),
        )
        # No shard executed again; the report is rebuilt from the journal.
        assert all(count_attempts(tmp_path, s.shard_id) == 1 for s in specs)
        assert second.n_completed == first.n_completed == 2
        assert set(second.machines) == set(first.machines)
        resumed = recorder.events("survey-resumed")
        assert len(resumed) == 1
        assert resumed[0]["attrs"]["n_restored"] == 2

    def test_recover_survey_report_offline(self, tmp_path):
        plan = _stub_plan(tmp_path)
        manifest_dir = tmp_path / "manifest"
        live = run_survey(**plan, shard_fn=well_behaved_shard, manifest_dir=manifest_dir)
        recovered = recover_survey_report(manifest_dir)
        assert recovered.n_shards == live.n_shards
        assert recovered.n_completed == live.n_completed
        assert set(recovered.machines) == set(live.machines)
        assert "all shards completed cleanly" in recovered.ledger.to_text()
