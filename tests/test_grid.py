"""FrequencyGrid: bin bookkeeping every other component relies on."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.spectrum.grid import FrequencyGrid


class TestConstruction:
    def test_paper_low_band_has_80000_points(self):
        """Figure 10: '4MHz/50Hz = 80,000 data points'."""
        grid = FrequencyGrid(0.0, 4e6, 50.0)
        assert grid.n_bins == 80000

    def test_frequencies_uniform(self):
        grid = FrequencyGrid(1e3, 11e3, 100.0)
        assert len(grid.frequencies) == 100
        np.testing.assert_allclose(np.diff(grid.frequencies), 100.0)

    def test_frequencies_read_only(self):
        grid = FrequencyGrid(0.0, 1e4, 100.0)
        with pytest.raises(ValueError):
            grid.frequencies[0] = 5.0

    @pytest.mark.parametrize(
        "start,stop,res",
        [(0.0, 1e3, 0.0), (1e3, 1e3, 10.0), (-1.0, 1e3, 10.0), (0.0, 10.0, 10.0)],
    )
    def test_invalid_construction(self, start, stop, res):
        with pytest.raises(GridError):
            FrequencyGrid(start, stop, res)


class TestIndexing:
    def test_index_roundtrip(self):
        grid = FrequencyGrid(0.0, 4e6, 50.0)
        for f in (0.0, 315e3, 3.9999e6):
            assert grid.frequency_at(grid.index_of(f)) == pytest.approx(f, abs=25.0)

    def test_contains(self):
        grid = FrequencyGrid(100e3, 200e3, 100.0)
        assert grid.contains(150e3)
        assert not grid.contains(250e3)
        assert not grid.contains(50e3)

    def test_index_outside_raises(self):
        grid = FrequencyGrid(0.0, 1e6, 100.0)
        with pytest.raises(GridError):
            grid.index_of(2e6)

    def test_negative_index(self):
        grid = FrequencyGrid(0.0, 1e4, 100.0)
        assert grid.frequency_at(-1) == grid.frequency_at(grid.n_bins - 1)

    def test_index_out_of_range(self):
        grid = FrequencyGrid(0.0, 1e4, 100.0)
        with pytest.raises(GridError):
            grid.frequency_at(grid.n_bins)


class TestEdgeBins:
    """Regressions for the documented [start, stop) boundary semantics.

    ``round()``-based containment used to accept frequencies up to half a
    bin *below* ``start`` and reject the last half-bin before ``stop``.
    """

    GRID = FrequencyGrid(100e3, 200e3, 100.0)

    def test_just_below_start_rejected(self):
        assert not self.GRID.contains(100e3 - 49.0)
        with pytest.raises(GridError):
            self.GRID.index_of(100e3 - 49.0)

    def test_just_under_stop_accepted(self):
        frequency = 200e3 - 49.0
        assert self.GRID.contains(frequency)
        assert self.GRID.index_of(frequency) == self.GRID.n_bins - 1

    def test_start_inclusive(self):
        assert self.GRID.contains(self.GRID.start)
        assert self.GRID.index_of(self.GRID.start) == 0

    def test_stop_exclusive(self):
        assert not self.GRID.contains(self.GRID.stop)
        with pytest.raises(GridError):
            self.GRID.index_of(self.GRID.stop)

    def test_every_bin_center_roundtrips(self):
        grid = FrequencyGrid(0.0, 10e3, 300.0)
        for index in range(grid.n_bins):
            assert grid.index_of(grid.frequency_at(index)) == index

    def test_span_not_a_resolution_multiple(self):
        """Frequencies past the last bin center but inside [start, stop)
        clamp to the nearest real bin instead of indexing out of range."""
        grid = FrequencyGrid(0.0, 1e3, 30.0)  # 33 bins, last center 960 Hz
        assert grid.contains(995.0)
        assert grid.index_of(995.0) == grid.n_bins - 1


class TestSlicing:
    def test_slice_indices(self):
        grid = FrequencyGrid(0.0, 1e6, 100.0)
        lo, hi = grid.slice_indices(10e3, 20e3)
        assert grid.frequency_at(lo) >= 10e3 - 1e-6
        assert grid.frequency_at(hi - 1) <= 20e3 + 1e-6

    def test_subgrid_same_resolution(self):
        grid = FrequencyGrid(0.0, 1e6, 100.0)
        sub = grid.subgrid(100e3, 200e3)
        assert sub.resolution == grid.resolution
        assert sub.start >= 100e3 - 1e-6

    def test_empty_slice_raises(self):
        grid = FrequencyGrid(0.0, 1e6, 100.0)
        with pytest.raises(GridError):
            grid.slice_indices(2e6, 3e6)

    def test_reversed_slice_raises(self):
        grid = FrequencyGrid(0.0, 1e6, 100.0)
        with pytest.raises(GridError):
            grid.slice_indices(20e3, 10e3)


class TestEquality:
    def test_equal_grids(self):
        assert FrequencyGrid(0.0, 1e6, 100.0) == FrequencyGrid(0.0, 1e6, 100.0)

    def test_different_resolution(self):
        assert FrequencyGrid(0.0, 1e6, 100.0) != FrequencyGrid(0.0, 1e6, 50.0)

    def test_hashable(self):
        cache = {FrequencyGrid(0.0, 1e6, 100.0): "x"}
        assert cache[FrequencyGrid(0.0, 1e6, 100.0)] == "x"
