"""Property-based tests (hypothesis) on the signal-theory core."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.signals.lineshape import DeltaLine, GaussianLine, LorentzianLine, SpreadSpectrumLine
from repro.signals.modulation import am_sideband_lines, modulation_depth_from_levels
from repro.signals.pulse import pulse_harmonic_amplitude, pulse_harmonic_power

duties = st.floats(min_value=0.005, max_value=0.995)
orders = st.integers(min_value=1, max_value=40)
amplitudes = st.floats(min_value=0.0, max_value=10.0)


class TestPulseProperties:
    @given(order=orders, duty=duties)
    def test_amplitude_bounded_by_duty(self, order, duty):
        """|c_n| = d |sinc(n d)| <= d <= 1."""
        amplitude = pulse_harmonic_amplitude(order, duty)
        assert 0.0 <= amplitude <= min(duty, 1.0) + 1e-12

    @given(order=orders, duty=duties)
    def test_complement_symmetry(self, order, duty):
        assert pulse_harmonic_amplitude(order, duty) == pytest.approx(
            pulse_harmonic_amplitude(order, 1.0 - duty), abs=1e-12
        )

    @given(duty=duties)
    def test_total_power_never_exceeds_mean_square(self, duty):
        """Partial Fourier sums are bounded by the signal's total power."""
        total = pulse_harmonic_power(0, duty)
        for n in range(1, 60):
            total += pulse_harmonic_power(n, duty)
        assert total <= duty + 1e-9

    @given(order=orders, duty=duties)
    def test_power_nonnegative(self, order, duty):
        assert pulse_harmonic_power(order, duty) >= 0.0


class TestLineShapeProperties:
    grid = np.arange(0.0, 500e3, 100.0)

    @given(
        sigma=st.floats(min_value=150.0, max_value=20e3),
        center=st.floats(min_value=120e3, max_value=380e3),
        power=st.floats(min_value=1e-18, max_value=1e-3),
    )
    @settings(max_examples=40)
    def test_gaussian_power_conserved(self, sigma, center, power):
        out = GaussianLine(sigma).render(self.grid, center, power)
        assert out.sum() == pytest.approx(power, rel=1e-6)
        assert np.all(out >= 0.0)

    @given(
        width=st.floats(min_value=5e3, max_value=100e3),
        center=st.floats(min_value=150e3, max_value=350e3),
    )
    @settings(max_examples=40)
    def test_spread_spectrum_power_conserved(self, width, center):
        out = SpreadSpectrumLine(width).render(self.grid, center, 1.0)
        assert out.sum() == pytest.approx(1.0, rel=1e-6)

    @given(gamma=st.floats(min_value=200.0, max_value=5e3))
    @settings(max_examples=20)
    def test_lorentzian_peak_at_center(self, gamma):
        out = LorentzianLine(gamma).render(self.grid, 250e3, 1.0)
        assert abs(self.grid[int(np.argmax(out))] - 250e3) <= 100.0

    @given(center=st.floats(min_value=0.0, max_value=499e3))
    @settings(max_examples=40)
    def test_delta_single_bin(self, center):
        out = DeltaLine().render(self.grid, center, 1.0)
        assert np.count_nonzero(out) == 1
        assert out.sum() == pytest.approx(1.0)


class TestModulationProperties:
    @given(
        amp_x=amplitudes,
        amp_y=amplitudes,
        falt=st.floats(min_value=1e3, max_value=100e3),
        duty=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60)
    def test_sideband_energy_conservation(self, amp_x, amp_y, falt, duty):
        """Carrier + side-band power equals the envelope's mean square.

        E[A(t)^2] = d*Ax^2 + (1-d)*Ay^2 decomposes exactly into the DC
        (carrier) term and the harmonic (side-band) terms by Parseval.
        """
        lines = am_sideband_lines(amp_x, amp_y, falt, duty_cycle=duty, n_harmonics=400)
        total = sum(line.power for line in lines)
        mean_square = duty * amp_x**2 + (1 - duty) * amp_y**2
        assert total <= mean_square + 1e-9
        assert total == pytest.approx(mean_square, rel=0.02)

    @given(amp_x=amplitudes, amp_y=amplitudes)
    def test_depth_in_unit_interval(self, amp_x, amp_y):
        assert 0.0 <= modulation_depth_from_levels(amp_x, amp_y) <= 1.0

    @given(
        amp_x=amplitudes,
        amp_y=amplitudes,
        falt=st.floats(min_value=1e3, max_value=100e3),
    )
    @settings(max_examples=40)
    def test_sidebands_symmetric(self, amp_x, amp_y, falt):
        lines = am_sideband_lines(amp_x, amp_y, falt, n_harmonics=5)
        by_offset = {line.offset: line.power for line in lines}
        for offset, power in by_offset.items():
            if offset != 0.0:
                assert by_offset[-offset] == pytest.approx(power)
