"""Timing model: burst durations, jitter mixture statistics."""

import numpy as np
import pytest

from repro.errors import SystemModelError
from repro.uarch.isa import MicroOp
from repro.uarch.timing import JitterMixture, LatencyModel


class TestJitterMixture:
    def test_mean_and_variance(self):
        mixture = JitterMixture(delays=(100.0,), probabilities=(0.5,))
        assert mixture.mean() == pytest.approx(50.0)
        assert mixture.variance() == pytest.approx(100.0**2 * 0.5 - 50.0**2)

    def test_sampling_matches_probabilities(self):
        mixture = JitterMixture(delays=(100.0, 400.0), probabilities=(0.2, 0.1))
        samples = mixture.sample(np.random.default_rng(0), 200_000)
        assert np.mean(samples == 100.0) == pytest.approx(0.2, abs=0.01)
        assert np.mean(samples == 400.0) == pytest.approx(0.1, abs=0.01)
        assert np.mean(samples == 0.0) == pytest.approx(0.7, abs=0.01)

    def test_discrete_modes(self):
        """'Several commonly-occurring execution times' (Section 2.1):
        the delay distribution has discrete modes, not a continuum."""
        mixture = JitterMixture()
        samples = mixture.sample(np.random.default_rng(1), 10_000)
        assert set(np.unique(samples)) <= {0.0, *mixture.delays}

    def test_validation(self):
        with pytest.raises(SystemModelError):
            JitterMixture(delays=(1.0,), probabilities=(0.5, 0.5))
        with pytest.raises(SystemModelError):
            JitterMixture(delays=(1.0, 2.0), probabilities=(0.8, 0.4))
        with pytest.raises(SystemModelError):
            JitterMixture(delays=(-1.0,), probabilities=(0.1,))


class TestLatencyModel:
    def test_burst_mean_scales_with_count(self):
        model = LatencyModel()
        one = model.burst_duration_mean(MicroOp.LDL1, 1000)
        two = model.burst_duration_mean(MicroOp.LDL1, 2000)
        assert two > one
        assert two < 2.05 * one  # jitter mean amortizes

    def test_burst_duration_positive(self):
        model = LatencyModel()
        samples = model.burst_durations(MicroOp.LDM, 10, 1000, rng=np.random.default_rng(0))
        assert np.all(samples > 0)

    def test_sampled_mean_matches_analytic(self):
        model = LatencyModel()
        samples = model.burst_durations(MicroOp.LDL1, 5000, 20000, rng=np.random.default_rng(0))
        assert samples.mean() == pytest.approx(
            model.burst_duration_mean(MicroOp.LDL1, 5000), rel=0.01
        )

    def test_sampled_std_matches_analytic(self):
        model = LatencyModel()
        samples = model.burst_durations(MicroOp.LDL1, 5000, 50000, rng=np.random.default_rng(0))
        assert samples.std() == pytest.approx(
            model.burst_duration_std(MicroOp.LDL1, 5000), rel=0.1
        )

    def test_validation(self):
        with pytest.raises(SystemModelError):
            LatencyModel(cpu_frequency=0.0)
        with pytest.raises(SystemModelError):
            LatencyModel().burst_duration_mean(MicroOp.ADD, 0)
        with pytest.raises(SystemModelError):
            LatencyModel().op_latency_cycles("ADD")
