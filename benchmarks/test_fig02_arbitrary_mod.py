"""Figure 2: a sinusoidal (ideal) carrier modulated by realistic program
activity.

The side-bands are no longer single tones: the dominant periodic behaviour
gives the tallest spike and the contention mixture's "several commonly-
occurring execution times" add smaller bumps around it.
"""

import numpy as np

from conftest import write_series
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.welch import trace_from_iq
from repro.uarch.isa import MicroOp
from repro.uarch.microbench import AlternationMicrobenchmark
from repro.uarch.timing import JitterMixture, LatencyModel

FS = 2e6
FC = 300e3
FALT = 43.3e3


def synthesize():
    """Envelope built from simulated loop periods (with contention modes)."""
    # A heavier contention mixture makes the Figure 2 bumps prominent.
    model = LatencyModel(jitter=JitterMixture(delays=(900.0, 2200.0), probabilities=(0.25, 0.10)))
    bench = AlternationMicrobenchmark.calibrated(
        MicroOp.LDM, MicroOp.LDL1, FALT, latency_model=model
    )
    rng = np.random.default_rng(0)
    n_samples = int(0.2 * FS)
    periods = bench.simulate_periods(int(0.2 * FALT * 1.2) + 16, rng=rng)
    envelope = np.empty(n_samples)
    filled = 0
    i = 0
    while filled < n_samples:
        half = max(int(round(periods[i % len(periods)] / 2 * FS)), 1)
        hi = min(filled + half, n_samples)
        envelope[filled:hi] = 1.0
        filled = hi
        hi = min(filled + half, n_samples)
        envelope[filled:hi] = 0.3
        filled = hi
        i += 1
    t = np.arange(n_samples) / FS
    iq = envelope * np.exp(2j * np.pi * FC * t)
    grid = FrequencyGrid(150e3, 450e3, 200.0)
    return trace_from_iq(iq, FS, grid), bench.achieved_falt()


def test_fig02_arbitrary_modulation(benchmark, output_dir):
    trace, achieved_falt = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    grid = trace.grid
    dbm = trace.dbm

    # Series: the right side-band region of the spectrum.
    lo, hi = grid.slice_indices(FC + 0.5 * achieved_falt, FC + 1.8 * achieved_falt)
    rows = [
        f"{grid.frequency_at(i) / 1e3:>10.2f} {dbm[i]:>8.1f}"
        for i in range(lo, hi, 4)
    ]
    write_series(output_dir, "fig02_arbitrary_mod", f"{'freq_kHz':>10} {'dBm':>8}", rows)

    # Shape: the dominant side-band spike sits at fc + falt...
    sb_slice = trace.power_mw[lo:hi]
    peak_f = grid.frequency_at(lo + int(np.argmax(sb_slice)))
    assert abs(peak_f - (FC + achieved_falt)) < 2e3
    # ...and the side-band energy is *spread* relative to an ideal tone:
    # the top bin holds well under half of the side-band band power.
    assert sb_slice.max() / sb_slice.sum() < 0.5
