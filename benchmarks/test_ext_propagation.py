"""Extension bench: received carrier levels vs antenna distance.

Quantifies §1's "recorded from a distance" with the near/far-field
transition: the table shows each carrier family's received level at 30 cm
(the paper's campaign distance), 1 m, and 3 m — the kHz-range regulator
and refresh carriers collapse (near-field, power ∝ 1/d⁶) while the
hundreds-of-MHz DRAM clock radiates (∝ 1/d² beyond λ/2π), which is why
ref [39] could demonstrate multi-meter reception for such signals.
"""

import numpy as np

from conftest import write_series
from repro.system import ReceiverChain

CARRIERS = (
    ("DRAM regulator", 315e3, -103.0),
    ("memory refresh", 512e3, -118.0),
    ("DRAM clock", 333e6, -91.0),
)
DISTANCES_CM = (30.0, 100.0, 300.0)


def test_ext_propagation_table(benchmark, output_dir):
    def build():
        rows = []
        for name, frequency, level_at_reference in CARRIERS:
            levels = []
            for distance in DISTANCES_CM:
                chain = ReceiverChain(distance_cm=distance)
                coupling_db = 10 * np.log10(chain.power_coupling(frequency=frequency))
                levels.append(level_at_reference + coupling_db)
            rows.append((name, frequency, levels))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    header = f"{'carrier':<16}{'freq':>10}{'30cm_dBm':>10}{'1m_dBm':>9}{'3m_dBm':>9}"
    formatted = [
        f"{name:<16}{frequency / 1e6:>9.3f}M{levels[0]:>10.1f}{levels[1]:>9.1f}{levels[2]:>9.1f}"
        for name, frequency, levels in rows
    ]
    write_series(output_dir, "ext_propagation", header, formatted)

    by_name = {name: levels for name, _, levels in rows}
    # near-field carriers collapse by ~60 dB at 3 m...
    assert by_name["DRAM regulator"][0] - by_name["DRAM regulator"][2] > 55.0
    # ...while the radiating clock loses only ~20 dB
    clock_loss = by_name["DRAM clock"][0] - by_name["DRAM clock"][2]
    assert 15.0 < clock_loss < 25.0
    # at 3 m the clock is the strongest system signal left
    assert by_name["DRAM clock"][2] > by_name["DRAM regulator"][2] + 20.0
