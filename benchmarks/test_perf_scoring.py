"""Old-vs-new scoring engine on the Figure 11 campaign (perf tentpole).

Times the full scoring-and-detection hot path — ``all_scores`` over all
ten harmonics plus ``CarrierDetector.detect`` — on the paper's 0-4 MHz /
50 Hz LDM/LDL1 campaign (80,000 bins x 5 falts), once through the naive
per-trace ``np.interp`` reference path and once through the vectorized
``ShiftedPowerCache`` engine. Emits a machine-readable
``BENCH_scoring.json`` and asserts the engine is at least 3x faster while
producing ``np.allclose``-identical scores and identical detections.
"""

import json
import time

import numpy as np

from repro.core import CarrierDetector, HeuristicScorer


def _best_of(fn, repeats=3):
    """Best wall-clock of several runs: robust to scheduler noise."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_scoring_engine_speedup(i7_ldm_result, output_dir):
    result = i7_ldm_result
    reference_scorer = HeuristicScorer(vectorized=False)
    fast_scorer = HeuristicScorer()

    reference_scores_s, reference_scores = _best_of(
        lambda: reference_scorer.all_scores(result)
    )
    fast_scores_s, fast_scores = _best_of(lambda: fast_scorer.all_scores(result))

    assert set(reference_scores) == set(fast_scores)
    for harmonic in reference_scores:
        np.testing.assert_allclose(
            fast_scores[harmonic], reference_scores[harmonic], rtol=1e-9
        )

    reference_detect_s, reference_detections = _best_of(
        lambda: CarrierDetector(scorer=reference_scorer).detect(result)
    )
    fast_detect_s, fast_detections = _best_of(lambda: CarrierDetector().detect(result))

    assert [d.frequency for d in reference_detections] == [
        d.frequency for d in fast_detections
    ]
    assert len(fast_detections) >= 10

    reference_total = reference_scores_s + reference_detect_s
    fast_total = fast_scores_s + fast_detect_s
    speedup = reference_total / fast_total

    record = {
        "campaign": result.config.describe(),
        "n_bins": result.grid.n_bins,
        "n_traces": len(result.measurements),
        "n_harmonics": len(result.config.harmonics),
        "reference": {
            "all_scores_s": reference_scores_s,
            "detect_s": reference_detect_s,
            "total_s": reference_total,
        },
        "vectorized": {
            "all_scores_s": fast_scores_s,
            "detect_s": fast_detect_s,
            "total_s": fast_total,
        },
        "speedup": speedup,
        "scores_allclose": True,
        "detections_identical": True,
    }
    (output_dir / "BENCH_scoring.json").write_text(json.dumps(record, indent=2) + "\n")

    assert speedup >= 3.0, f"vectorized engine only {speedup:.2f}x faster"
