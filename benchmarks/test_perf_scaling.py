"""Performance benchmarks: campaign capture and scoring at paper scale.

These use real repeated timing (not single-shot pedantic runs) so
pytest-benchmark's statistics are meaningful. The paper's low band is
80,000 bins x 5 falts; the mid band is 240,000 bins.
"""

import numpy as np
import pytest

from repro import FaseConfig, MeasurementCampaign, MicroOp, campaign_low_band
from repro.core import CarrierDetector, HeuristicScorer
from repro.system import build_environment, corei7_desktop


@pytest.fixture(scope="module")
def machine():
    return corei7_desktop(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def low_band_result(machine):
    campaign = MeasurementCampaign(machine, campaign_low_band(), rng=np.random.default_rng(1))
    return campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")


def test_perf_low_band_campaign(benchmark, machine):
    """Five falts x four averages over 80,000 bins."""

    def run():
        campaign = MeasurementCampaign(
            machine, campaign_low_band(), rng=np.random.default_rng(1)
        )
        return campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")

    result = benchmark(run)
    assert result.grid.n_bins == 80000


def test_perf_heuristic_scoring(benchmark, low_band_result):
    """All ten falt harmonics of Eq. 1/2 over the full grid."""
    scorer = HeuristicScorer()
    scores = benchmark(lambda: scorer.all_scores(low_band_result))
    assert len(scores) == 10


def test_perf_detection(benchmark, low_band_result):
    detections = benchmark(lambda: CarrierDetector().detect(low_band_result))
    assert len(detections) >= 10


def test_perf_mid_band_capture(benchmark):
    """One 240,000-bin capture of the paper's 0-120 MHz campaign."""
    machine = corei7_desktop(
        environment=build_environment(120e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    config = FaseConfig(
        span_low=0.0, span_high=120e6, fres=500.0, falt1=43.3e3, f_delta=5e3,
        name="mid band",
    )
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))

    trace = benchmark(lambda: campaign.capture_steady({"dram_bus": 0.5}, label="steady"))
    assert trace.grid.n_bins == 240000
