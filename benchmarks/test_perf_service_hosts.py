"""Worker-host scaling: do two hosts actually drain a backlog faster?

One hub-only service (``workers=0`` — no in-process fleet at all) runs
in the benchmark process; ``fase worker`` processes are spawned against
it exactly as an operator would. The same fixed backlog of *real*
(small-grid) shards is drained twice — once by one host, once by two —
and ``BENCH_service_hosts.json`` records both wall-clocks, the speedup,
and the invariant that matters more than speed: the journal holds
exactly one completed-progress record per shard in both runs — nothing
lost to the HTTP hop, nothing run twice.

The ≥1.5x two-host speedup floor is only *enforced* on machines with at
least four CPU cores: on a one-core CI container two real-shard hosts
time-slice each other and the measurement is noise, but the accounting
invariants (and the recorded numbers) still hold.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro import FaseConfig
from repro.journalutil import iter_journal
from repro.service import FaseService, ServiceClient

#: Small but real: 2000-bin grid with a populated low band.
CONFIG = FaseConfig(
    span_low=0.0, span_high=1e6, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
    name="service hosts benchmark",
)
PAIR_NAMES = [["LDM", "LDL1"]]
SIX_BANDS = [[i * 1e6 / 6.0, (i + 1) * 1e6 / 6.0] for i in range(6)]

SPEEDUP_FLOOR = 1.5
SPEEDUP_FLOOR_MIN_CPUS = 4


def _spawn_hosts(url, n, tag):
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", url, "--name", f"{tag}-host-{i}",
                "--poll-interval", "0.02", "--idle-exit", "2.0", "--quiet",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        for i in range(n)
    ]


def _drain_with_hosts(root, n_hosts, tag):
    """Drain one fresh backlog with ``n_hosts``; returns the accounting."""
    with FaseService(root, workers=0, reap_after_s=5.0) as service:
        host, port = service.start()
        client = ServiceClient(f"http://{host}:{port}")
        job_id = client.submit(
            "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
            config=CONFIG, bands=SIX_BANDS,
        )
        n_shards = client.job(job_id)["n_shards"]
        processes = _spawn_hosts(f"http://{host}:{port}", n_hosts, tag)
        start = time.perf_counter()
        try:
            status = client.wait(job_id, timeout_s=600.0, poll_s=0.05)
            elapsed = time.perf_counter() - start
        finally:
            for process in processes:
                if process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            for process in processes:
                process.wait(timeout=30.0)
        assert status["state"] == "completed"
        assert status["n_completed"] == n_shards
        workers = status["workers"]

    # Zero lost, zero duplicated: exactly one completed-progress journal
    # record per shard, straight from the store's own ledger.
    completed = {}
    for record, _ in iter_journal(root / "store.jsonl"):
        if (
            record is not None
            and record.get("kind") == "progress"
            and record.get("status") == "completed"
        ):
            completed[record["shard_id"]] = completed.get(record["shard_id"], 0) + 1
    assert len(completed) == n_shards
    assert sorted(completed.values()) == [1] * n_shards
    return {"elapsed_s": elapsed, "n_shards": n_shards, "workers": workers}


def test_two_hosts_beat_one(output_dir, tmp_path):
    one = _drain_with_hosts(tmp_path / "one", 1, "solo")
    two = _drain_with_hosts(tmp_path / "two", 2, "duo")
    assert one["n_shards"] == two["n_shards"]
    assert sum(two["workers"].values()) == two["n_shards"]

    cpus = os.cpu_count() or 1
    speedup = one["elapsed_s"] / two["elapsed_s"]
    floor_enforced = cpus >= SPEEDUP_FLOOR_MIN_CPUS
    record = {
        "n_shards": one["n_shards"],
        "one_host_elapsed_s": one["elapsed_s"],
        "two_hosts_elapsed_s": two["elapsed_s"],
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_enforced": floor_enforced,
        "cpu_count": cpus,
        "one_host_workers": one["workers"],
        "two_hosts_workers": two["workers"],
        "lost_shards": 0,
        "duplicated_shards": 0,
    }
    (output_dir / "BENCH_service_hosts.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    if floor_enforced:
        assert speedup >= SPEEDUP_FLOOR
