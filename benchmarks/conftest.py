"""Shared benchmark fixtures.

Each benchmark regenerates one figure (or claim) of the paper: it runs the
workload, writes the series the figure plots to ``benchmarks/output/``, and
asserts the *shape* of the result (who wins, what moves, what is rejected).
Expensive campaign results are session-cached so related figures (7, 9, 11
share the LDM/LDL1 low-band campaign) reuse one run.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro import FaseConfig, MeasurementCampaign, MicroOp, campaign_low_band
from repro.core import CarrierDetector
from repro.system import build_environment, corei7_desktop, turionx2_laptop

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_series(output_dir, name, header, rows):
    """Write one figure's regenerated series as an aligned text table."""
    path = output_dir / f"{name}.txt"
    lines = [header]
    lines.extend(rows)
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture(scope="session")
def i7():
    return corei7_desktop(rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def i7_hf():
    """The i7 with an environment spanning the DRAM clock band."""
    return corei7_desktop(
        environment=build_environment(340e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )


@pytest.fixture(scope="session")
def turion():
    return turionx2_laptop(rng=np.random.default_rng(2))


@pytest.fixture(scope="session")
def i7_ldm_result(i7):
    campaign = MeasurementCampaign(i7, campaign_low_band(), rng=np.random.default_rng(1))
    return campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")


@pytest.fixture(scope="session")
def i7_ldl2_result(i7):
    campaign = MeasurementCampaign(i7, campaign_low_band(), rng=np.random.default_rng(1))
    return campaign.run(MicroOp.LDL2, MicroOp.LDL1, label="LDL2/LDL1")


@pytest.fixture(scope="session")
def i7_null_result(i7):
    campaign = MeasurementCampaign(i7, campaign_low_band(), rng=np.random.default_rng(1))
    return campaign.run(MicroOp.LDL1, MicroOp.LDL1, label="LDL1/LDL1")


@pytest.fixture(scope="session")
def i7_ldm_detections(i7_ldm_result):
    return CarrierDetector().detect(i7_ldm_result)


@pytest.fixture(scope="session")
def i7_ldl2_detections(i7_ldl2_result):
    return CarrierDetector().detect(i7_ldl2_result)


@pytest.fixture(scope="session")
def dram_clock_config():
    """The Figure 15/16 measurement window around the 333 MHz DRAM clock."""
    return FaseConfig(
        span_low=329e6, span_high=336e6, fres=2e3, falt1=180e3, f_delta=10e3,
        name="DRAM clock window",
    )


@pytest.fixture(scope="session")
def dram_clock_result(i7_hf, dram_clock_config):
    campaign = MeasurementCampaign(i7_hf, dram_clock_config, rng=np.random.default_rng(1))
    return campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
