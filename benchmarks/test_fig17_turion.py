"""Figure 17: FASE results for the AMD Turion X2 laptop, LDM/LDL1.

Four signal families over 0.1-1.1 MHz: the memory regulator comb, the
memory refresh comb at 132 kHz multiples ("instead of 128 kHz as observed
in all three other systems"), and two unidentified regulator-like carriers.
The constant-on-time (FM) core regulator must not appear.
"""

import numpy as np

from conftest import write_series
from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.core import CarrierDetector, group_harmonics


def run_turion(turion):
    config = FaseConfig(span_low=0.0, span_high=1.2e6, fres=50.0, name="turion window")
    campaign = MeasurementCampaign(turion, config, rng=np.random.default_rng(3))
    result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
    detections = CarrierDetector().detect(result)
    return detections, group_harmonics(detections)


def test_fig17_turion_ldm_ldl1(benchmark, output_dir, turion):
    detections, sets = benchmark.pedantic(lambda: run_turion(turion), rounds=1, iterations=1)
    header = f"{'set_kHz':>9}{'order':>7}{'freq_kHz':>10}{'dBm':>9}{'depth':>7}"
    rows = [
        f"{s.fundamental / 1e3:>9.1f}{order:>7}{c.frequency / 1e3:>10.1f}"
        f"{c.magnitude_dbm:>9.1f}{c.modulation_depth:>7.2f}"
        for s in sets
        for order, c in s.members
    ]
    write_series(output_dir, "fig17_turion", header, rows)

    frequencies = np.array([d.frequency for d in detections])

    def found(target, tol=2e3):
        return np.any(np.abs(frequencies - target) < tol)

    # Shape: the four families of Figure 17.
    assert found(250e3) or found(500e3)  # memory regulator comb
    assert found(132e3) or found(264e3) or found(396e3)  # refresh at 132 kHz
    assert found(406e3)  # unidentified carrier A
    assert found(472e3)  # unidentified carrier B

    # The FM core regulator's parked dwell hump is not claimed.
    core_reg = turion.emitter_named("CPU core regulator (constant on-time)")
    parked = core_reg.frequency_at(0.5)
    assert not found(parked, tol=8e3)
