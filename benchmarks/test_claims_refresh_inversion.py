"""Section 4.2 claim: the refresh carrier weakens as memory activity grows.

"Additional experiments showed that the carrier signal is strongest when
there is no memory activity and weakest when we generate continuous memory
activity" — the inverted response that identified the mechanism.
"""

import numpy as np

from conftest import write_series
from repro.analysis.modulation_depth import modulation_depth_sweep
from repro.spectrum.grid import FrequencyGrid
from repro.system import build_environment, corei7_desktop
from repro.system.domains import DRAM_POWER, MEMORY_UTILIZATION

LEVELS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def sweep_both():
    machine = corei7_desktop(
        environment=build_environment(4e6, kind="quiet"), rng=np.random.default_rng(0)
    )
    refresh_grid = FrequencyGrid(450e3, 600e3, 50.0)
    refresh = modulation_depth_sweep(
        machine, MEMORY_UTILIZATION, 512e3, refresh_grid, levels=LEVELS
    )
    regulator_grid = FrequencyGrid(250e3, 400e3, 50.0)
    regulator = modulation_depth_sweep(
        machine, DRAM_POWER, 315e3, regulator_grid, levels=LEVELS
    )
    return refresh, regulator


def test_claims_refresh_inversion(benchmark, output_dir):
    refresh, regulator = benchmark.pedantic(sweep_both, rounds=1, iterations=1)
    header = f"{'activity':>9}{'refresh_dBm':>13}{'regulator_dBm':>15}"
    rows = [
        f"{rf.level:>9.1f}{rf.carrier_dbm:>13.1f}{rg.carrier_dbm:>15.1f}"
        for rf, rg in zip(refresh, regulator)
    ]
    write_series(output_dir, "claims_refresh_inversion", header, rows)

    refresh_powers = [m.carrier_power_mw for m in refresh]
    regulator_powers = [m.carrier_power_mw for m in regulator]
    # Refresh: strictly weakening; strongest idle, weakest at full load.
    assert refresh_powers == sorted(refresh_powers, reverse=True)
    assert refresh_powers[0] > 5 * refresh_powers[-1]
    # Regulator: the opposite sign of response.
    assert regulator_powers[-1] > regulator_powers[0]
