"""Ablation benches for the design choices DESIGN.md calls out.

1. Number of alternation frequencies N (the paper uses 5).
2. Eq. 1's product fusion vs a single-spectrum sub-score.
3. Harmonic count scored (±1 only vs ±1..±5).
4. f_delta choice (too small: side-band shifts unresolved).
"""

import numpy as np

from conftest import write_series
from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.core import CarrierDetector, HeuristicScorer
from repro.system import build_environment, corei7_desktop

def make_machine():
    return corei7_desktop(
        environment=build_environment(2e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )


def true_carriers(machine, result):
    """Model ground truth: every modulated emitter harmonic in the span."""
    activity = result.measurements[0].activity
    truth = []
    for emitter in machine.modulated_emitters(activity):
        truth.extend(emitter.carrier_frequencies(up_to=result.grid.stop))
    return truth


def run_campaign(machine, n_alternations=5, f_delta=0.5e3, harmonics=None, seed=1):
    kwargs = {}
    if harmonics is not None:
        kwargs["harmonics"] = harmonics
    config = FaseConfig(
        span_low=0.0,
        span_high=2e6,
        fres=50.0,
        falt1=43.3e3,
        f_delta=f_delta,
        n_alternations=n_alternations,
        name="ablation",
        **kwargs,
    )
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(seed))
    return campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")


def score_detections(machine, result, detections):
    """(true positives, false positives) against the model's ground truth."""
    truth = true_carriers(machine, result)
    tp = sum(
        1 for d in detections if any(abs(d.frequency - f) < 2e3 for f in truth)
    )
    fp = len(detections) - tp
    return tp, fp


def test_ablation_n_alternations(benchmark, output_dir):
    machine = make_machine()

    def sweep():
        rows = []
        for n in (2, 3, 5):
            result = run_campaign(machine, n_alternations=n)
            detections = CarrierDetector().detect(result)
            rows.append((n, *score_detections(machine, result, detections)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'n_falts':>8}{'true_pos':>10}{'false_pos':>11}"
    write_series(
        output_dir,
        "ablation_n_alternations",
        header,
        [f"{n:>8}{tp:>10}{fp:>11}" for n, tp, fp in rows],
    )
    by_n = {n: (tp, fp) for n, tp, fp in rows}
    # Five alternation frequencies find at least as many carriers as two
    # and are free of false positives; fewer falts weaken the movement
    # verification (ghosts appear), which is why the paper uses five.
    assert by_n[5][0] >= by_n[2][0]
    assert by_n[5][0] >= 8
    assert by_n[5][1] == 0


def test_ablation_product_fusion(benchmark, output_dir):
    """Eq. 1's product across the N spectra is what suppresses noise: the
    carrier-to-noise contrast of the full product must far exceed a single
    sub-score's."""
    machine = make_machine()
    result = run_campaign(machine)
    scorer = HeuristicScorer()

    def contrast():
        grid = result.grid
        idx = grid.index_of(315e3)
        product = scorer.harmonic_score(result.traces, result.falts, 1)
        subs = scorer.subscores(result.traces, result.falts, 1)
        single = subs[0]
        def carrier_to_noise(score):
            carrier = score[idx - 5 : idx + 6].max()
            noise = np.percentile(score, 99.9)
            return carrier / noise
        return carrier_to_noise(product), carrier_to_noise(single)

    product_contrast, single_contrast = benchmark.pedantic(contrast, rounds=1, iterations=1)
    header = f"{'fusion':<12}{'carrier_to_p999_noise':>22}"
    write_series(
        output_dir,
        "ablation_product_fusion",
        header,
        [
            f"{'product':<12}{product_contrast:>22.2f}",
            f"{'single_sub':<12}{single_contrast:>22.2f}",
        ],
    )
    assert product_contrast > 2 * single_contrast


def test_ablation_harmonic_count(benchmark, output_dir):
    """Scoring ±1..±5 vs ±1 only: the extra harmonics add evidence for
    low-duty-cycle combs without hurting precision."""
    machine = make_machine()

    def sweep():
        rows = []
        for harmonics in ((1, -1), (1, -1, 2, -2, 3, -3, 4, -4, 5, -5)):
            result = run_campaign(machine, harmonics=harmonics)
            detections = CarrierDetector().detect(result)
            rows.append((len(harmonics), *score_detections(machine, result, detections)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'n_harmonics':>12}{'true_pos':>10}{'false_pos':>11}"
    write_series(
        output_dir,
        "ablation_harmonic_count",
        header,
        [f"{n:>12}{tp:>10}{fp:>11}" for n, tp, fp in rows],
    )
    by_n = {n: (tp, fp) for n, tp, fp in rows}
    assert by_n[10][0] >= by_n[2][0]
    assert by_n[10][1] == 0


def test_ablation_f_delta(benchmark, output_dir):
    """f_delta must exceed the spectrum resolution by enough to resolve the
    side-band movement; once resolvable, the exact choice matters little
    ('the choice of falt1 and f_delta is arbitrary')."""
    machine = make_machine()

    def sweep():
        rows = []
        for f_delta in (0.2e3, 0.5e3, 2e3):
            result = run_campaign(machine, f_delta=f_delta)
            detections = CarrierDetector().detect(result)
            rows.append((f_delta, *score_detections(machine, result, detections)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'f_delta_Hz':>11}{'true_pos':>10}{'false_pos':>11}"
    write_series(
        output_dir,
        "ablation_f_delta",
        header,
        [f"{fd:>11.0f}{tp:>10}{fp:>11}" for fd, tp, fp in rows],
    )
    by_fd = {fd: (tp, fp) for fd, tp, fp in rows}
    assert by_fd[0.5e3][0] >= 8 and by_fd[0.5e3][1] == 0
    assert by_fd[2e3][0] >= 6 and by_fd[2e3][1] == 0
