"""Figure 11: FASE results for the Intel Core i7 desktop, LDM/LDL1.

The paper's headline figure: over 0-4 MHz the memory pair exposes three
harmonic sets — the DRAM DIMM regulator (315 kHz comb), the memory-
controller regulator (its own comb), and the memory-refresh comb (512 kHz
multiples) — while the core regulator's visible humps go unreported.
"""


from conftest import write_series
from repro.core import CarrierDetector, group_harmonics


def detect(result):
    detections = CarrierDetector().detect(result)
    return detections, group_harmonics(detections)


def test_fig11_i7_ldm_ldl1(benchmark, output_dir, i7_ldm_result):
    detections, sets = benchmark.pedantic(
        lambda: detect(i7_ldm_result), rounds=1, iterations=1
    )
    header = f"{'set_kHz':>9}{'order':>7}{'freq_kHz':>10}{'dBm':>9}{'depth':>7}{'evidence':>10}"
    rows = []
    for harmonic_set in sets:
        for order, carrier in harmonic_set.members:
            rows.append(
                f"{harmonic_set.fundamental / 1e3:>9.1f}{order:>7}"
                f"{carrier.frequency / 1e3:>10.1f}{carrier.magnitude_dbm:>9.1f}"
                f"{carrier.modulation_depth:>7.2f}{carrier.combined_score:>10.1f}"
            )
    write_series(output_dir, "fig11_i7_ldm_ldl1", header, rows)

    fundamentals = sorted(s.fundamental for s in sets)
    # Shape: exactly the paper's three signal families.
    assert len(sets) == 3
    assert abs(fundamentals[0] - 225e3) < 2e3  # memory-controller regulator
    assert abs(fundamentals[1] - 315e3) < 2e3  # DRAM DIMM regulator
    assert abs(fundamentals[2] - 512e3) < 2e3  # memory refresh comb

    # The refresh set has the most (similar-strength) harmonics: tiny duty.
    refresh = max(sets, key=lambda s: len(s.members))
    assert abs(refresh.fundamental - 512e3) < 2e3
    assert len(refresh.members) >= 4

    # The regulator fundamentals out-power the refresh comb (as in Fig. 11).
    regulator = min(sets, key=lambda s: abs(s.fundamental - 315e3))
    assert regulator.strongest_dbm > refresh.strongest_dbm

    # The core regulator (333 kHz) is NOT among the detections.
    for detection in detections:
        assert abs(detection.frequency - 333e3) > 2e3
