"""Campaign-service overhead: dispatch latency, throughput, decisions.

The service's pitch is that durability and fairness cost milliseconds,
not shards. This benchmark runs the real store + fleet with stub shard
bodies — so every measured second is *service* overhead (journal
fsyncs, scheduling, claim bookkeeping), not pipeline time — and emits a
machine-readable ``BENCH_service.json`` with three numbers:

* **submit→dispatch latency** — wall-clock from ``submit()`` returning
  to a worker holding the job's first claim;
* **sustained shard throughput** — shards/second through a two-worker
  fleet draining a two-tenant backlog, every transition journaled;
* **scheduler-decision overhead** — microseconds per
  :meth:`FairShareScheduler.select` over a 64-tenant snapshot.

Each gets a generous budget floor (latency under 2 s, throughput at
least 5 shards/s, decisions under 5 ms) — loose enough for a noisy CI
runner, tight enough that an accidental O(n^2) or a stray ``sleep``
fails the build.
"""

import json
import time

from repro import FaseConfig
from repro.service import FairShareScheduler, JobStore, TenantPolicy, WorkerFleet
from repro.survey.chaos import stub_result

MACHINES = ("corei7_desktop", "turionx2_laptop")
PAIR = (("LDM", "LDL1"),)
CONFIG = FaseConfig(
    span_low=0.0, span_high=1e5, fres=50.0, falt1=43.3e3, f_delta=1e3,
    name="service benchmark",
)
EIGHT_BANDS = tuple((i * 1.25e4, (i + 1) * 1.25e4) for i in range(8))

LATENCY_BUDGET_S = 2.0
THROUGHPUT_FLOOR_SHARDS_PER_S = 5.0
DECISION_BUDGET_S = 0.005


def _open_store(root, policies=()):
    return JobStore(root, scheduler=FairShareScheduler(policies)).open(
        server_name="bench"
    )


def _submit(store, tenant, bands=None):
    return store.submit(
        tenant=tenant, machines=MACHINES, pairs=PAIR, config=CONFIG, bands=bands
    )


def test_service_overhead_budgets(output_dir, tmp_path):
    # -- submit -> dispatch latency (fleet already idling) -------------
    store = _open_store(tmp_path / "latency")
    fleet = WorkerFleet(store, workers=2, shard_fn=stub_result, poll_interval_s=0.005)
    fleet.start()
    latencies = []
    try:
        for round_ in range(5):
            job_id = _submit(store, f"tenant{round_}")
            start = time.perf_counter()
            while store.job_status(job_id)["state"] == "queued":
                time.sleep(0.001)
            latencies.append(time.perf_counter() - start)
            fleet.drain(timeout_s=30.0)
    finally:
        fleet.stop()
    dispatch_latency_s = min(latencies)

    # -- sustained throughput: 2 tenants x 16 shards, all journaled ----
    store = _open_store(tmp_path / "throughput")
    jobs = [
        _submit(store, tenant, bands=EIGHT_BANDS) for tenant in ("alice", "bob")
    ]
    n_shards = sum(store.job_status(job_id)["n_shards"] for job_id in jobs)
    fleet = WorkerFleet(store, workers=2, shard_fn=stub_result, poll_interval_s=0.005)
    start = time.perf_counter()
    fleet.start()
    try:
        assert fleet.drain(timeout_s=120.0)
    finally:
        fleet.stop()
    elapsed = time.perf_counter() - start
    shards_per_s = n_shards / elapsed
    assert all(store.job_status(job_id)["state"] == "completed" for job_id in jobs)

    # -- reap contention: sweeps are an interval, not a per-poll tax ---
    # Four fast-polling workers share one reap schedule; the store-lock
    # sweep count must track wall-clock / (reap_after_s / 2), not the
    # (worker count x poll rate) product it was before the shared
    # interval landed — that regression read as lock contention.
    store = _open_store(tmp_path / "reaping")
    _submit(store, "alice", bands=EIGHT_BANDS)
    reap_after_s = 0.5
    fleet = WorkerFleet(
        store, workers=4, shard_fn=stub_result, poll_interval_s=0.005,
        reap_after_s=reap_after_s,
    )
    start = time.perf_counter()
    fleet.start()
    try:
        assert fleet.drain(timeout_s=120.0)
        time.sleep(0.5)  # an idle stretch: polling continues, work doesn't
    finally:
        fleet.stop()
    reap_elapsed_s = time.perf_counter() - start
    reap_calls = store.reap_calls
    # Generous ceiling: one sweep per half-interval plus slack. The
    # pre-fix behavior (every worker, every poll) lands in the hundreds.
    reap_calls_budget = int(reap_elapsed_s / (reap_after_s / 2.0)) + 3

    # -- scheduler-decision overhead over a wide tenant field ----------
    n_tenants = 64
    scheduler = FairShareScheduler(
        tuple(
            TenantPolicy(f"t{i:03d}", weight=1.0 + (i % 7), priority=i % 3)
            for i in range(n_tenants)
        )
    )
    snapshot = {
        "decision": 1000,
        "tenants": {
            f"t{i:03d}": {
                "live_claims": i % 4,
                "charged": i * 3,
                "last_claim_decision": 1000 - i,
                "jobs": [{"job_id": f"job-{i:03d}", "has_pending": True}],
            }
            for i in range(n_tenants)
        },
    }
    n_decisions = 2000
    start = time.perf_counter()
    for _ in range(n_decisions):
        assert scheduler.select(snapshot) is not None
    decision_s = (time.perf_counter() - start) / n_decisions

    record = {
        "dispatch_latency_s": dispatch_latency_s,
        "dispatch_latency_budget_s": LATENCY_BUDGET_S,
        "n_shards": n_shards,
        "drain_elapsed_s": elapsed,
        "shards_per_s": shards_per_s,
        "throughput_floor_shards_per_s": THROUGHPUT_FLOOR_SHARDS_PER_S,
        "scheduler_tenants": n_tenants,
        "scheduler_decision_s": decision_s,
        "scheduler_decision_budget_s": DECISION_BUDGET_S,
        "workers": 2,
        "reap_workers": 4,
        "reap_after_s": reap_after_s,
        "reap_elapsed_s": reap_elapsed_s,
        "reap_calls": reap_calls,
        "reap_calls_budget": reap_calls_budget,
    }
    (output_dir / "BENCH_service.json").write_text(json.dumps(record, indent=2) + "\n")

    assert dispatch_latency_s < LATENCY_BUDGET_S
    assert shards_per_s >= THROUGHPUT_FLOOR_SHARDS_PER_S
    assert decision_s < DECISION_BUDGET_S
    assert reap_calls <= reap_calls_budget
