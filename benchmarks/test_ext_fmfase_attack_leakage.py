"""Extension benches: FM-FASE (§4.4 future work), the at-a-distance attack
(§4.1's claim), and per-carrier leakage ranking (§6's quantification).
"""

import numpy as np

from conftest import write_series
from repro.analysis.attack import attack_carrier
from repro.analysis.leakage import rank_leaks
from repro.core.fmfase import FM_CARRIER, FmFaseScanner
from repro.spectrum.grid import FrequencyGrid
from repro.system import build_environment, turionx2_laptop
from repro.system.domains import CORE


def test_ext_fmfase_finds_cot_regulator(benchmark, output_dir):
    """AM-FASE correctly ignores the AMD constant-on-time regulator; the
    FM variant the paper sketches must find it — and nothing else."""
    machine = turionx2_laptop(
        environment=build_environment(1.2e6, kind="quiet"), rng=np.random.default_rng(0)
    )
    scanner = FmFaseScanner(FrequencyGrid(150e3, 700e3, 50.0), CORE)

    detections = benchmark.pedantic(lambda: scanner.scan(machine), rounds=1, iterations=1)
    header = "FM-FASE sweep of the Turion core domain (steady levels 0..1)"
    write_series(output_dir, "ext_fmfase", header, [d.describe() for d in detections])

    fm = [d for d in detections if d.kind == FM_CARRIER]
    regulator = machine.emitter_named("CPU core regulator (constant on-time)")
    assert len(fm) == 1
    assert abs(fm[0].hump.idle_frequency - regulator.frequency_at(0.0)) < 10e3
    expected_shift = regulator.frequency_at(1.0) - regulator.frequency_at(0.0)
    assert fm[0].hump.frequency_shift == np.clip(
        fm[0].hump.frequency_shift, 0.5 * expected_shift, 1.5 * expected_shift
    )


def test_ext_attack_noise_sweep(benchmark, output_dir):
    """Bit-recovery accuracy of the regulator-carrier power analysis vs
    receiver noise: near-perfect at realistic SNR, degrading gracefully."""
    bits = tuple(int(b) for b in np.random.default_rng(0).integers(0, 2, size=64))

    def sweep():
        rows = []
        for noise in (0.02, 0.2, 1.0, 4.0):
            result = attack_carrier(bits, noise_rms=noise, rng=np.random.default_rng(1))
            rows.append((noise, result.bit_accuracy, result.envelope_snr_db))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'noise_rms':>10}{'bit_accuracy':>14}{'env_SNR_dB':>12}"
    write_series(
        output_dir,
        "ext_attack_noise_sweep",
        header,
        [f"{n:>10.2f}{acc:>14.3f}{snr:>12.1f}" for n, acc, snr in rows],
    )
    accuracies = [acc for _, acc, _ in rows]
    assert accuracies[0] == 1.0
    assert accuracies == sorted(accuracies, reverse=True)
    assert accuracies[-1] < 1.0  # heavy noise does break it


def test_ext_leakage_ranking(benchmark, output_dir, i7_ldm_result, i7_ldm_detections):
    estimates = benchmark.pedantic(
        lambda: rank_leaks(i7_ldm_result, i7_ldm_detections), rounds=1, iterations=1
    )
    header = "per-carrier leakage ranking (i7, LDM/LDL1)"
    write_series(output_dir, "ext_leakage_ranking", header, [e.describe() for e in estimates])
    assert len(estimates) == len(i7_ldm_detections)
    # the strongest leak is a regulator fundamental, not a refresh line
    top = estimates[0]
    assert top.carrier_frequency in (
        315e3,
    ) or abs(top.carrier_frequency - 315e3) < 2e3 or abs(top.carrier_frequency - 225e3) < 2e3
