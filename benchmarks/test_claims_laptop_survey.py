"""Section 4.4 claim: on every tested system FASE finds the same signal
families — regulator carriers and the refresh comb (the DRAM clock is
covered by the campaign-3 benches).
"""

import numpy as np

from conftest import write_series
from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.core import CarrierDetector, group_harmonics
from repro.system import ALL_PRESETS, MemoryRefreshEmitter, SwitchingRegulator, build_environment


def run_survey():
    results = {}
    for name in sorted(ALL_PRESETS):
        machine = ALL_PRESETS[name](
            environment=build_environment(2e6, kind="quiet"), rng=np.random.default_rng(0)
        )
        config = FaseConfig(span_low=0.0, span_high=2e6, fres=100.0, name="survey window")
        campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        detections = CarrierDetector().detect(result)
        results[name] = (machine, result, detections, group_harmonics(detections))
    return results


def test_claims_laptop_survey(benchmark, output_dir):
    results = benchmark.pedantic(run_survey, rounds=1, iterations=1)
    header = f"{'system':<20}{'sets':>6}  fundamentals_kHz"
    rows = []
    for name, (machine, result, detections, sets) in results.items():
        fundamentals = ", ".join(f"{s.fundamental / 1e3:.1f}" for s in sets)
        rows.append(f"{name:<20}{len(sets):>6}  {fundamentals}")
    write_series(output_dir, "claims_laptop_survey", header, rows)

    for name, (machine, result, detections, sets) in results.items():
        frequencies = np.array([d.frequency for d in detections])
        assert frequencies.size > 0, name
        activity = result.measurements[0].activity
        # a modulated regulator harmonic is found
        regulator_found = any(
            np.min(np.abs(frequencies - harmonic)) < 2e3
            for emitter in machine.emitters
            if isinstance(emitter, SwitchingRegulator) and emitter.is_modulated_by(activity)
            for harmonic in emitter.carrier_frequencies(up_to=2e6)
        )
        assert regulator_found, name
        # the refresh comb is found
        refresh = next(e for e in machine.emitters if isinstance(e, MemoryRefreshEmitter))
        comb = refresh.refresh_frequency * refresh.n_ranks
        refresh_found = any(
            np.min(np.abs(frequencies - k * comb)) < 2e3
            for k in range(1, int(2e6 // comb))
        )
        assert refresh_found, name
