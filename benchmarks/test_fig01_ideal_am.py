"""Figure 1: a sinusoidal carrier modulated by a sinusoidal signal.

The spectrum must show the carrier at fc and two side-bands at fc ± falt —
the textbook AM spectrum FASE's side-band hunt is built on.
"""

import numpy as np

from conftest import write_series
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.welch import trace_from_iq

FS = 2e6
FC = 300e3
FALT = 43.3e3


def synthesize():
    t = np.arange(int(0.2 * FS)) / FS
    envelope = 1.0 + 0.5 * np.cos(2 * np.pi * FALT * t)
    iq = envelope * np.exp(2j * np.pi * FC * t)
    grid = FrequencyGrid(150e3, 450e3, 200.0)
    return trace_from_iq(iq, FS, grid)


def test_fig01_ideal_am(benchmark, output_dir):
    trace = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    grid = trace.grid

    def peak_near(f, halfwidth=2e3):
        lo, hi = grid.slice_indices(f - halfwidth, f + halfwidth)
        idx = lo + int(np.argmax(trace.power_mw[lo:hi]))
        # band power around the peak avoids FFT scalloping of off-bin tones
        return grid.frequency_at(idx), float(trace.power_mw[lo:hi].sum())

    carrier_f, carrier_p = peak_near(FC)
    upper_f, upper_p = peak_near(FC + FALT)
    lower_f, lower_p = peak_near(FC - FALT)

    rows = [
        f"{'line':<12}{'frequency_kHz':>15}{'relative_dB':>13}",
        f"{'carrier':<12}{carrier_f / 1e3:>15.2f}{0.0:>13.1f}",
        f"{'upper_sb':<12}{upper_f / 1e3:>15.2f}{10 * np.log10(upper_p / carrier_p):>13.1f}",
        f"{'lower_sb':<12}{lower_f / 1e3:>15.2f}{10 * np.log10(lower_p / carrier_p):>13.1f}",
    ]
    write_series(output_dir, "fig01_ideal_am", rows[0], rows[1:])

    # Shape: side-bands exactly at fc ± falt, symmetric, below the carrier.
    assert abs(carrier_f - FC) < 500.0
    assert abs(upper_f - (FC + FALT)) < 500.0
    assert abs(lower_f - (FC - FALT)) < 500.0
    assert abs(upper_p - lower_p) / upper_p < 0.2
    # m = 0.5 -> each side-band is (m/2)^2 = -12 dB below the carrier
    np.testing.assert_allclose(10 * np.log10(upper_p / carrier_p), -12.0, atol=1.5)
