"""Figures 15 and 16: detecting the spread-spectrum DRAM clock.

Figure 15: at 50% memory activity with falt = 180..220 kHz, side-band
copies of the pedestal emerge outside the swept band and move with falt.
Figure 16: the heuristic reports the clock "as two separate carriers at
the edges of the spread out clock signal".
"""

import numpy as np

from conftest import write_series
from repro.core import CarrierDetector, HeuristicScorer


def test_fig15_sidebands_outside_band(benchmark, output_dir, dram_clock_result):
    result = dram_clock_result
    grid = result.grid

    def band_dbm(trace, f, halfwidth=20e3):
        lo, hi = grid.slice_indices(f - halfwidth, f + halfwidth)
        return float(10 * np.log10(np.mean(trace.power_mw[lo:hi])))

    def rows_fn():
        rows = []
        for measurement in result.measurements:
            upper_horn = 333e6 + measurement.falt
            lower_horn = 332e6 - measurement.falt
            rows.append(
                (
                    measurement.falt,
                    band_dbm(measurement.trace, lower_horn),
                    band_dbm(measurement.trace, upper_horn),
                )
            )
        return rows

    rows = benchmark.pedantic(rows_fn, rounds=1, iterations=1)
    header = f"{'falt_kHz':>9}{'below_band_dBm':>16}{'above_band_dBm':>16}"
    write_series(
        output_dir,
        "fig15_ss_clock_sidebands",
        header,
        [f"{falt / 1e3:>9.1f}{lo_dbm:>16.1f}{hi_dbm:>16.1f}" for falt, lo_dbm, hi_dbm in rows],
    )

    # Shape: each measurement shows side-band energy at its own falt offset
    # outside the swept band, above the far-out floor.
    floor = band_dbm(result.measurements[0].trace, 335.5e6)
    for falt, lo_dbm, hi_dbm in rows:
        assert max(lo_dbm, hi_dbm) > floor + 3.0


def test_fig16_two_edge_carriers(benchmark, output_dir, dram_clock_result):
    detections = benchmark.pedantic(
        lambda: CarrierDetector(min_separation_hz=150e3).detect(dram_clock_result),
        rounds=1,
        iterations=1,
    )
    scorer = HeuristicScorer()
    combined = scorer.combined_zscore(dram_clock_result)
    grid = dram_clock_result.grid

    header = f"{'freq_MHz':>10}{'combined_z':>12}"
    rows = [
        f"{grid.frequency_at(i) / 1e6:>10.3f}{combined[i]:>12.1f}"
        for i in range(0, grid.n_bins, 25)
    ]
    write_series(output_dir, "fig16_ss_clock_detection", header, rows)

    # Shape: exactly two carriers, at the edges of the spread clock.
    assert len(detections) == 2
    low, high = sorted(d.frequency for d in detections)
    assert abs(low - 332e6) < 100e3
    assert abs(high - 333e6) < 100e3
