"""Telemetry overhead guard: the disabled layer must cost nothing.

Two claims are enforced:

* the no-op default (``NULL_TELEMETRY``) costs well under a microsecond
  per instrumentation site, so sprinkling spans through the campaign and
  scoring layers leaves uninstrumented runs unchanged;
* even a *fully enabled* pipeline (recorder sink + profiler) changes the
  scoring-and-detection hot path by a bounded factor, because spans wrap
  whole stages, never inner loops.

Bounds are deliberately generous (CI machines are noisy); the scoring
benchmark's 3x speedup floor in ``test_perf_scoring.py`` is the
fine-grained regression guard and runs in the same CI job with telemetry
disabled.
"""

import json
import time

from repro.core import CarrierDetector
from repro.telemetry import NULL_TELEMETRY, Recorder, Telemetry, use_telemetry


def _best_of(fn, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_null_span_cost_is_negligible(output_dir):
    iterations = 100_000
    telemetry = NULL_TELEMETRY

    def spin():
        for index in range(iterations):
            with telemetry.span("capture", index=index, stage="capture"):
                pass
        return iterations

    elapsed, _ = _best_of(spin)
    per_call_us = 1e6 * elapsed / iterations
    (output_dir / "BENCH_telemetry_null.json").write_text(
        json.dumps({"iterations": iterations, "per_call_us": per_call_us}, indent=2)
    )
    # Real sites fire a handful of times per capture; 5 us a call would
    # still be invisible, and the no-op is far below it.
    assert per_call_us < 5.0


def test_enabled_pipeline_overhead_bounded(i7_ldm_result, output_dir):
    result = i7_ldm_result

    def detect():
        return CarrierDetector().detect(result)

    disabled_s, disabled = _best_of(detect)

    telemetry = Telemetry(sinks=[Recorder()], profile=True)
    with use_telemetry(telemetry):
        enabled_s, enabled = _best_of(detect)

    assert [d.frequency for d in disabled] == [d.frequency for d in enabled]
    overhead = enabled_s / disabled_s - 1.0
    (output_dir / "BENCH_telemetry_overhead.json").write_text(
        json.dumps(
            {
                "disabled_s": disabled_s,
                "enabled_s": enabled_s,
                "overhead_fraction": overhead,
            },
            indent=2,
        )
    )
    # One detect span + one score span + two counters over a ~100 ms
    # stage: the true overhead is microseconds. 25% absorbs CI noise.
    assert overhead < 0.25
