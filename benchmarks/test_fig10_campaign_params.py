"""Figure 10: the FASE measurement-parameter table (the paper's one table).

    Frequency Range    fres     falt1      f_delta
    0 to 4 MHz         50 Hz    43.3 kHz   0.5 kHz
    0 to 120 MHz       500 Hz   43.3 kHz   5.0 kHz
    0 to 1200 MHz      500 Hz   1800 kHz   100 kHz
"""

from conftest import write_series
from repro.core import PAPER_CAMPAIGNS


def build_table():
    rows = []
    for name in ("low", "mid", "high"):
        cfg = PAPER_CAMPAIGNS[name]()
        rows.append(
            (name, cfg.span_low, cfg.span_high, cfg.fres, cfg.falt1, cfg.f_delta, cfg.n_points())
        )
    return rows


def test_fig10_campaign_parameters(benchmark, output_dir):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    header = f"{'band':<6}{'range_MHz':>12}{'fres_Hz':>9}{'falt1_kHz':>11}{'fdelta_kHz':>12}{'points':>9}"
    formatted = [
        f"{name:<6}{f'{lo / 1e6:g}-{hi / 1e6:g}':>12}{fres:>9.0f}{falt1 / 1e3:>11.1f}"
        f"{fdelta / 1e3:>12.1f}{points:>9}"
        for name, lo, hi, fres, falt1, fdelta, points in rows
    ]
    write_series(output_dir, "fig10_campaign_params", header, formatted)

    by_name = {r[0]: r[1:] for r in rows}
    assert by_name["low"] == (0.0, 4e6, 50.0, 43.3e3, 0.5e3, 80000)
    assert by_name["mid"] == (0.0, 120e6, 500.0, 43.3e3, 5e3, 240000)
    assert by_name["high"] == (0.0, 1200e6, 500.0, 1800e3, 100e3, 2400000)
