"""Figure 9: the heuristic function's output for the ±1st harmonics around
two carriers (the Figure 7 refresh-comb carrier and the Figure 12 core-
regulator carrier).

The output must spike at frequency offset 0 from each carrier and stay
flat (≈1, i.e. log ≈ 0) away from it.
"""

import numpy as np

from conftest import write_series
from repro.core import HeuristicScorer


def heuristic_curves(result, carrier, span=10e3):
    scorer = HeuristicScorer()
    grid = result.grid
    plus = scorer.harmonic_score(result.traces, result.falts, 1)
    minus = scorer.harmonic_score(result.traces, result.falts, -1)
    lo, hi = grid.slice_indices(carrier - span, carrier + span)
    offsets = grid.frequencies[lo:hi] - carrier
    return offsets, plus[lo:hi], minus[lo:hi]


def test_fig09_heuristic_output(benchmark, output_dir, i7_ldm_result, i7_ldl2_result):
    offsets_a, plus_a, minus_a = benchmark.pedantic(
        lambda: heuristic_curves(i7_ldm_result, 1024e3), rounds=1, iterations=1
    )
    offsets_b, plus_b, minus_b = heuristic_curves(i7_ldl2_result, 333e3)

    header = f"{'offset_kHz':>11}{'refresh_F+1':>12}{'refresh_F-1':>12}{'coreReg_F+1':>12}{'coreReg_F-1':>12}"
    rows = []
    for i in range(0, len(offsets_a), 4):
        j = min(i, len(offsets_b) - 1)
        rows.append(
            f"{offsets_a[i] / 1e3:>11.2f}{plus_a[i]:>12.2f}{minus_a[i]:>12.2f}"
            f"{plus_b[j]:>12.2f}{minus_b[j]:>12.2f}"
        )
    write_series(output_dir, "fig09_heuristic_output", header, rows)

    for offsets, plus, minus in ((offsets_a, plus_a, minus_a), (offsets_b, plus_b, minus_b)):
        center = int(np.argmin(np.abs(offsets)))
        window = slice(max(center - 10, 0), center + 11)
        peak = max(plus[window].max(), minus[window].max())
        off_carrier = np.concatenate((plus[: center - 50], plus[center + 50 :]))
        # spike at the carrier, flat (near 1) elsewhere
        assert peak > 5.0
        assert np.median(off_carrier) < 2.0
