"""Figure 12: the core-regulator carrier and its side-bands under on-chip
(LDL2/LDL1) alternation.

Gaussian-looking humps; side-band peaks shift by f_delta with falt; one
side may be obscured without harming carrier identification.
"""

import numpy as np

from conftest import write_series

FC = 333e3


def sideband_tracks(result):
    grid = result.grid
    tracks = {+1: [], -1: []}
    for measurement in result.measurements:
        for side in (+1, -1):
            target = FC + side * measurement.falt
            lo, hi = grid.slice_indices(target - 2e3, target + 2e3)
            idx = lo + int(np.argmax(measurement.trace.power_mw[lo:hi]))
            tracks[side].append(
                (measurement.falt, grid.frequency_at(idx), float(measurement.trace.dbm[idx]))
            )
    return tracks


def test_fig12_core_regulator_sidebands(benchmark, output_dir, i7_ldl2_result):
    tracks = benchmark.pedantic(lambda: sideband_tracks(i7_ldl2_result), rounds=1, iterations=1)
    header = f"{'falt_kHz':>9}{'left_kHz':>10}{'left_dBm':>10}{'right_kHz':>11}{'right_dBm':>11}"
    rows = []
    for (falt, lf, ldbm), (_, rf, rdbm) in zip(tracks[-1], tracks[+1]):
        rows.append(f"{falt / 1e3:>9.2f}{lf / 1e3:>10.2f}{ldbm:>10.1f}{rf / 1e3:>11.2f}{rdbm:>11.1f}")
    write_series(output_dir, "fig12_core_regulator", header, rows)

    # Shape: at least one side tracks fc ± falt through all five falts.
    def tracking_count(side):
        return sum(
            1 for falt, f, _ in tracks[side] if abs(f - (FC + side * falt)) < 400.0
        )

    assert max(tracking_count(+1), tracking_count(-1)) >= 4

    # The carrier hump itself is Gaussian-ish: monotone decay off-peak.
    grid = i7_ldl2_result.grid
    trace = i7_ldl2_result.measurements[0].trace
    center = grid.index_of(FC)
    lo = center - 40
    window = trace.power_mw[lo : center + 41]
    peak_offset = int(np.argmax(window))
    assert abs(peak_offset - 40) <= 5
    smoothed = np.convolve(window, np.ones(7) / 7, mode="valid")
    peak_s = int(np.argmax(smoothed))
    assert smoothed[peak_s] > 4 * smoothed[0]
    assert smoothed[peak_s] > 4 * smoothed[-1]
