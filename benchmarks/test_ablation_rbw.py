"""Ablation: analyzer resolution bandwidth vs detection.

The campaign's f_delta must stay resolvable by the instrument: at
RBW = 50 Hz (= fres, the paper's setting) the 0.5 kHz side-band steps are
crisp; widening the RBW smears the lines until the movement disappears
into one blurred hump and detection collapses — quantifying why Figure 10
pairs each span with a matching fres.
"""

import numpy as np

from conftest import write_series
from repro import FaseConfig, MicroOp
from repro.core import CarrierDetector
from repro.core.campaign import MeasurementCampaign
from repro.spectrum.analyzer import SpectrumAnalyzer
from repro.system import build_environment, corei7_desktop


class _RbwCampaign(MeasurementCampaign):
    """MeasurementCampaign with an instrument RBW override."""

    def __init__(self, *args, rbw=None, **kwargs):
        super().__init__(*args, **kwargs)
        self._rbw = rbw

    def _analyzer(self):
        from repro.rng import child_rng

        return SpectrumAnalyzer(
            n_averages=self.config.n_averages,
            rbw=self._rbw,
            rng=child_rng(self.rng, "analyzer"),
        )


def test_ablation_resolution_bandwidth(benchmark, output_dir):
    machine = corei7_desktop(
        environment=build_environment(2e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    config = FaseConfig(span_low=0.0, span_high=2e6, fres=50.0, name="rbw ablation")

    def sweep():
        rows = []
        for rbw in (None, 200.0, 1000.0, 4000.0):
            campaign = _RbwCampaign(
                machine, config, rbw=rbw, rng=np.random.default_rng(1)
            )
            result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
            detections = CarrierDetector().detect(result)
            rows.append((rbw or config.fres, len(detections)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'rbw_Hz':>8}{'carriers':>10}"
    write_series(
        output_dir,
        "ablation_rbw",
        header,
        [f"{rbw:>8.0f}{count:>10}" for rbw, count in rows],
    )
    counts = {rbw: count for rbw, count in rows}
    # the paper's matched RBW finds the most carriers; a 4 kHz RBW (8x the
    # f_delta step) destroys the movement signature
    assert counts[50.0] >= 8
    assert counts[4000.0] < counts[50.0] / 2
    # detection degrades monotonically-ish with RBW
    ordered = [count for _, count in rows]
    assert ordered[0] >= ordered[-1]
