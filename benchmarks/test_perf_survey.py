"""Serial vs process-parallel survey wall-clock (zero-copy data plane).

Runs one fixed survey plan — two machines x two activity pairs over the
paper's 0-4 MHz / 50 Hz span — twice through ``run_survey`` with
``keep_spectra=True``: once inline (``workers=1``) and once fanned
across a process pool. Workers publish every spectrum row straight into
parent-owned shared memory, so the parallel run returns the same
byte-exact spectra as the serial run without pickling a single trace
across the pool boundary. Emits a machine-readable
``BENCH_survey.json`` and asserts:

* **purity** — parallel detections and spectra are identical to serial;
* **hygiene** — no ``/dev/shm/psm_*`` segment outlives the reports;
* **speedup** — >= 2.0x over serial, applied only on runners with
  enough cores for the pool to matter.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import FaseConfig
from repro.survey import run_survey

MACHINES = ("corei7_desktop", "turionx2_laptop")
CONFIG = FaseConfig(
    span_low=0.0,
    span_high=4e6,
    fres=50.0,
    falt1=43.3e3,
    f_delta=0.5e3,
    name="survey benchmark",
)
SEED = 11


def _best_of(fn, repeats=2):
    """Best wall-clock of several runs: robust to scheduler noise."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        if value is not None:
            value.close()  # release the previous run's shared memory
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _detections(report):
    return {
        name: {
            label: [d.frequency for d in activity.detections]
            for label, activity in fase.activities.items()
        }
        for name, fase in report.machines.items()
    }


def _shm_segments():
    return sorted(p.name for p in Path("/dev/shm").glob("psm_*"))


def test_survey_process_parallel_speedup(output_dir):
    cores = os.cpu_count() or 1
    workers = min(4, cores)
    shm_before = _shm_segments()

    serial_s, serial = _best_of(
        lambda: run_survey(
            machines=MACHINES, config=CONFIG, seed=SEED, workers=1, keep_spectra=True
        )
    )
    parallel_s, parallel = _best_of(
        lambda: run_survey(
            machines=MACHINES, config=CONFIG, seed=SEED, workers=workers, keep_spectra=True
        )
    )

    # Purity: the pool changes wall-clock, never results. Detections AND
    # the shared-memory spectra must match the inline run byte for byte.
    assert _detections(parallel) == _detections(serial)
    assert serial.ledger.n_failures == parallel.ledger.n_failures == 0
    assert serial.n_completed == serial.n_shards == len(MACHINES) * 2
    assert set(parallel.spectra) == set(serial.spectra)
    for shard_id, ours in serial.spectra.items():
        theirs = parallel.spectra[shard_id]
        assert ours.n_rows == theirs.n_rows
        assert np.array_equal(ours.power, theirs.power)

    speedup = serial_s / parallel_s
    record = {
        "campaign": CONFIG.describe(),
        "machines": list(MACHINES),
        "n_shards": serial.n_shards,
        "cpu_count": cores,
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "detections_identical": True,
        "spectra_identical": True,
        "keep_spectra": True,
    }
    (output_dir / "BENCH_survey.json").write_text(json.dumps(record, indent=2) + "\n")

    # Hygiene: releasing both reports must leave /dev/shm exactly as we
    # found it — the arena owns every segment and unlinks on close.
    serial.close()
    parallel.close()
    assert _shm_segments() == shm_before

    # A 1-core container cannot show a process-pool win; the JSON is
    # still written so the number is always on record.
    if cores >= 4:
        assert speedup >= 2.0
