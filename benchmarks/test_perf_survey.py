"""Serial vs process-parallel survey wall-clock (survey-engine tentpole).

Runs one fixed survey plan — two machines x two activity pairs over the
paper's 0-4 MHz / 50 Hz span — twice through ``run_survey``: once inline
(``workers=1``) and once fanned across a process pool. Emits a
machine-readable ``BENCH_survey.json`` and asserts the parallel run's
detections are identical to the serial run's (the engine's purity
guarantee); the >= 1.5x speedup assertion only applies on runners with
enough cores for the pool to matter.
"""

import json
import os
import time

from repro import FaseConfig
from repro.survey import run_survey

MACHINES = ("corei7_desktop", "turionx2_laptop")
CONFIG = FaseConfig(
    span_low=0.0,
    span_high=4e6,
    fres=50.0,
    falt1=43.3e3,
    f_delta=0.5e3,
    name="survey benchmark",
)
SEED = 11


def _best_of(fn, repeats=2):
    """Best wall-clock of several runs: robust to scheduler noise."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _detections(report):
    return {
        name: {
            label: [d.frequency for d in activity.detections]
            for label, activity in fase.activities.items()
        }
        for name, fase in report.machines.items()
    }


def test_survey_process_parallel_speedup(output_dir):
    cores = os.cpu_count() or 1
    workers = min(4, cores)

    serial_s, serial = _best_of(
        lambda: run_survey(machines=MACHINES, config=CONFIG, seed=SEED, workers=1)
    )
    parallel_s, parallel = _best_of(
        lambda: run_survey(machines=MACHINES, config=CONFIG, seed=SEED, workers=workers)
    )

    # Purity: the pool changes wall-clock, never results.
    assert _detections(parallel) == _detections(serial)
    assert serial.ledger.n_failures == parallel.ledger.n_failures == 0
    assert serial.n_completed == serial.n_shards == len(MACHINES) * 2

    speedup = serial_s / parallel_s
    record = {
        "campaign": CONFIG.describe(),
        "machines": list(MACHINES),
        "n_shards": serial.n_shards,
        "cpu_count": cores,
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "detections_identical": True,
    }
    (output_dir / "BENCH_survey.json").write_text(json.dumps(record, indent=2) + "\n")

    # A 1-core container cannot show a process-pool win; the JSON is
    # still written so the number is always on record.
    if cores >= 4:
        assert speedup >= 1.5
