"""Figures 4 and 5: non-ideal carrier x arbitrary modulation, then the same
signal drowned in noise and unrelated signals.

Figure 4's point: the modulated spectrum is the convolution of a spread
carrier with a structured modulating spectrum. Figure 5's point: with the
metropolitan environment on top, the carrier is no longer findable by eye —
the off-carrier spectrum is full of peaks as strong as the carrier's, which
is why FASE exists.
"""

import numpy as np

from conftest import write_series
from repro.spectrum.analyzer import SpectrumAnalyzer
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.peaks import detect_peaks
from repro.system import build_environment, corei7_desktop
from repro.uarch.isa import MicroOp, activity_levels
from repro.uarch.activity import AlternationActivity

GRID = FrequencyGrid(200e3, 450e3, 100.0)


def activity():
    return AlternationActivity(
        falt=43.3e3,
        levels_x=activity_levels(MicroOp.LDM),
        levels_y=activity_levels(MicroOp.LDL1),
        jitter_fraction=0.002,
        label="LDM/LDL1",
    )


def render(kind):
    machine = corei7_desktop(
        environment=build_environment(4e6, kind=kind, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    analyzer = SpectrumAnalyzer(n_averages=4, rng=np.random.default_rng(2))
    return analyzer.capture(machine.scene(activity()), GRID)


def test_fig04_nonideal_carrier_arbitrary_mod(benchmark, output_dir):
    trace = benchmark.pedantic(lambda: render("quiet"), rounds=1, iterations=1)
    dbm = trace.dbm
    rows = [
        f"{GRID.frequency_at(i) / 1e3:>10.1f} {dbm[i]:>8.1f}" for i in range(0, GRID.n_bins, 10)
    ]
    write_series(output_dir, "fig04_nonideal_both", f"{'freq_kHz':>10} {'dBm':>8}", rows)
    # Shape: in a quiet chamber the 315 kHz carrier and its first side-bands
    # are the dominant features of this window.
    carrier = trace.power_mw[GRID.index_of(315e3) - 5 : GRID.index_of(315e3) + 6].max()
    sideband = trace.power_mw[GRID.index_of(358.3e3) - 20 : GRID.index_of(358.3e3) + 21].max()
    floor = np.median(trace.power_mw)
    assert carrier > 100 * floor
    assert sideband > 5 * floor


def test_fig05_with_noise_and_interference(benchmark, output_dir):
    trace = benchmark.pedantic(lambda: render("metropolitan"), rounds=1, iterations=1)
    dbm = trace.dbm
    rows = [
        f"{GRID.frequency_at(i) / 1e3:>10.1f} {dbm[i]:>8.1f}" for i in range(0, GRID.n_bins, 10)
    ]
    write_series(output_dir, "fig05_realistic_spectrum", f"{'freq_kHz':>10} {'dBm':>8}", rows)
    # Shape: visual carrier hunting is now hopeless — the window contains
    # several peaks comparable to or stronger than the side-band humps.
    sideband = trace.power_mw[GRID.index_of(358.3e3) - 20 : GRID.index_of(358.3e3) + 21].max()
    peaks = detect_peaks(dbm, window=5, n_sigma=3.0)
    stronger_elsewhere = [
        p for p in peaks
        if trace.power_mw[p.index] > sideband
        and abs(GRID.frequency_at(p.index) - 315e3) > 5e3
    ]
    assert len(stronger_elsewhere) >= 3
