"""Extension bench: FASE end-to-end through the time-domain capture path.

Two independent physics implementations — analytic line rendering vs
sampled waveforms + Welch estimation — must hand the unchanged FASE
pipeline the same carriers.
"""

import numpy as np

from conftest import write_series
from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.core import CarrierDetector
from repro.system import build_environment, corei7_desktop
from repro.system.timedomain import TimeDomainCampaign


def test_ext_timedomain_cross_validation(benchmark, output_dir):
    machine = corei7_desktop(
        environment=build_environment(4e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    config = FaseConfig(
        span_low=200e3, span_high=700e3, fres=50.0,
        falt1=43.3e3, f_delta=0.5e3, name="TD window",
    )

    def run_both():
        td_campaign = TimeDomainCampaign(
            machine, config, duration=0.4, rng=np.random.default_rng(1)
        )
        td = CarrierDetector().detect(td_campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1"))
        an_campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
        an = CarrierDetector().detect(an_campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1"))
        return td, an

    td, analytic = benchmark.pedantic(run_both, rounds=1, iterations=1)
    header = f"{'path':<10} carriers_kHz"
    rows = [
        f"{'analytic':<10} " + ", ".join(f"{d.frequency / 1e3:.1f}" for d in analytic),
        f"{'waveform':<10} " + ", ".join(f"{d.frequency / 1e3:.1f}" for d in td),
    ]
    write_series(output_dir, "ext_timedomain_crosscheck", header, rows)

    td_freqs = np.array([d.frequency for d in td])
    # every core carrier of this window is found by BOTH paths
    for expected in (315e3, 450e3, 512e3):
        assert any(abs(d.frequency - expected) < 1e3 for d in analytic), expected
        assert np.min(np.abs(td_freqs - expected)) < 1e3, expected
    # and neither path invents the core regulator
    for detection in list(td) + list(analytic):
        assert abs(detection.frequency - 333e3) > 2e3
