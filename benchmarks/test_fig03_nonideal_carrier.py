"""Figure 3: a non-ideal (spread) carrier modulated by an ideal signal.

"Even though falt is perfectly stable, the side-bands at fc - falt and
fc + falt will 'inherit' the instability of fc." — the side-band humps must
have the same width as the carrier hump.
"""

import numpy as np

from conftest import write_series
from repro.signals.modulation import am_sideband_lines
from repro.signals.oscillator import RCOscillator
from repro.spectrum.grid import FrequencyGrid

FC = 300e3
FALT = 43.3e3


def render():
    osc = RCOscillator(FC, fractional_sigma=4e-3)  # sigma = 1.2 kHz
    grid = FrequencyGrid(200e3, 400e3, 100.0)
    shape = osc.lineshape(1)
    power = np.zeros(grid.n_bins)
    for line in am_sideband_lines(1.0, 0.4, FALT, n_harmonics=1):
        power += shape.render(grid.frequencies, FC + line.offset, line.power)
    return grid, power, osc.sigma


def hump_width(grid, power, center, halfspan=10e3):
    """RMS width of the spectral hump around a center frequency."""
    lo, hi = grid.slice_indices(center - halfspan, center + halfspan)
    f = grid.frequencies[lo:hi]
    p = power[lo:hi]
    mean = np.sum(f * p) / np.sum(p)
    return float(np.sqrt(np.sum(p * (f - mean) ** 2) / np.sum(p)))


def test_fig03_nonideal_carrier(benchmark, output_dir):
    grid, power, sigma = benchmark.pedantic(render, rounds=1, iterations=1)
    carrier_width = hump_width(grid, power, FC)
    upper_width = hump_width(grid, power, FC + FALT)
    lower_width = hump_width(grid, power, FC - FALT)

    header = f"{'hump':<10}{'center_kHz':>12}{'rms_width_Hz':>14}"
    rows = [
        f"{'carrier':<10}{FC / 1e3:>12.1f}{carrier_width:>14.1f}",
        f"{'upper_sb':<10}{(FC + FALT) / 1e3:>12.1f}{upper_width:>14.1f}",
        f"{'lower_sb':<10}{(FC - FALT) / 1e3:>12.1f}{lower_width:>14.1f}",
    ]
    write_series(output_dir, "fig03_nonideal_carrier", header, rows)

    # Shape: the carrier's spread equals the oscillator sigma, and both
    # side-bands inherit it.
    np.testing.assert_allclose(carrier_width, sigma, rtol=0.1)
    np.testing.assert_allclose(upper_width, carrier_width, rtol=0.1)
    np.testing.assert_allclose(lower_width, carrier_width, rtol=0.1)
