"""Section 1 claim: FASE rejects every strong signal that is not modulated
by the micro-benchmark — AM stations, long-wave transmitters, the system's
own unmodulated combs — and the authors validated this by inspecting all
rejected signals at least as strong as the reported ones.
"""


from conftest import write_series
from repro.analysis.validation import validate_rejections


def test_claims_rejection_validation(benchmark, output_dir, i7, i7_ldm_result, i7_ldm_detections):
    checks = benchmark.pedantic(
        lambda: validate_rejections(i7, i7_ldm_result, i7_ldm_detections),
        rounds=1,
        iterations=1,
    )
    header = f"{'freq_kHz':>10}{'dBm':>9}  verdict"
    rows = []
    for check in checks:
        verdict = (
            "MISSED CARRIER"
            if check.is_missed_carrier
            else ("reported-set harmonic" if not check.is_truly_unmodulated else "correctly rejected")
        )
        rows.append(f"{check.frequency / 1e3:>10.1f}{check.magnitude_dbm:>9.1f}  {verdict} ({check.nearest_emitter})")
    write_series(output_dir, "claims_rejection", header, rows)

    # Shape: many strong rejected signals exist, none is a missed carrier.
    assert len(checks) > 20
    assert not any(check.is_missed_carrier for check in checks)
    environmental = sum(1 for c in checks if c.nearest_emitter == "environment")
    assert environmental > len(checks) / 3
