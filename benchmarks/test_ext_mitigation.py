"""Extension bench: the paper's proposed mitigations, quantified.

Section 4.2: "randomizing the issue of memory refresh commands ... would
greatly reduce the modulation of refresh activity"; Section 1: modulation
weakening by scheduling; Section 4.3's averaged-sense caveat for spreading.
"""

import numpy as np

from conftest import write_series
from repro import FaseConfig
from repro.mitigation import (
    AccessPacedRefreshEmitter,
    DitheredRegulator,
    RandomizedRefreshEmitter,
    evaluate_mitigation,
    replace_emitter,
)
from repro.system import build_environment, corei7_desktop


def machine_and_config():
    machine = corei7_desktop(
        environment=build_environment(2e6, kind="quiet"), rng=np.random.default_rng(0)
    )
    config = FaseConfig(span_low=0.0, span_high=2e6, fres=100.0, name="mitigation eval")
    return machine, config


def refresh_kwargs():
    return dict(
        refresh_frequency=128e3, fundamental_dbm=-118.0, coherence_loss=2.0,
        n_ranks=4, rank_imbalance=0.15, max_harmonics=40, position=(22.0, 8.0),
    )


def test_mitigation_refresh_randomization(benchmark, output_dir):
    machine, config = machine_and_config()

    def run():
        mitigated = replace_emitter(
            machine, "memory refresh",
            RandomizedRefreshEmitter("memory refresh", randomization=1.0, **refresh_kwargs()),
        )
        return evaluate_mitigation(machine, mitigated, 512e3, config, rng=np.random.default_rng(7))

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    header = "refresh randomization (r = 1.0) at the 512 kHz comb line"
    write_series(output_dir, "ext_mitigation_refresh", header, [outcome.describe()])
    assert outcome.detected_before and not outcome.detected_after
    assert outcome.carrier_reduction_db > 10.0
    assert outcome.sideband_reduction_db > 6.0


def test_mitigation_access_pacing(benchmark, output_dir):
    machine, config = machine_and_config()

    def run():
        mitigated = replace_emitter(
            machine, "memory refresh",
            AccessPacedRefreshEmitter("memory refresh", pacing=0.97, **refresh_kwargs()),
        )
        return evaluate_mitigation(machine, mitigated, 512e3, config, rng=np.random.default_rng(7))

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    header = "access pacing (p = 0.97) at the 512 kHz comb line"
    write_series(output_dir, "ext_mitigation_pacing", header, [outcome.describe()])
    # pacing weakens the modulation (side-band) while *keeping* the carrier
    assert outcome.detected_before and not outcome.detected_after
    assert outcome.sideband_reduction_db > 6.0
    assert abs(outcome.carrier_reduction_db) < 6.0


def test_mitigation_regulator_dithering(benchmark, output_dir):
    machine, config = machine_and_config()

    def run():
        stock = machine.emitter_named("DRAM DIMM regulator")
        mitigated = replace_emitter(
            machine, "DRAM DIMM regulator",
            DitheredRegulator(
                "DRAM DIMM regulator",
                switching_frequency=stock.switching_frequency,
                domain=stock.domain,
                fundamental_dbm=stock.fundamental_dbm,
                duty_gain=stock.duty_gain,
                output_volts=stock.nominal_duty * 12.0,
                input_volts=12.0,
                fractional_sigma=4e-4,
                dither_width=40e3,
                position=stock.position,
            ),
        )
        return evaluate_mitigation(machine, mitigated, 315e3, config, rng=np.random.default_rng(7))

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    header = "regulator frequency dithering (40 kHz) at the 315 kHz fundamental"
    write_series(output_dir, "ext_mitigation_dithering", header, [outcome.describe()])
    # the peak line drops by the spreading ratio (averaged-sense mitigation)
    assert outcome.carrier_reduction_db > 10.0
