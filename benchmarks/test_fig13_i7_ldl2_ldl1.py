"""Figure 13: FASE results for the Intel Core i7 desktop, LDL2/LDL1.

"Only one type of carrier was found to be modulated in this case — the
signal that corresponds to the switching regulator for the CPU cores."
"""

from conftest import write_series
from repro.core import CarrierDetector, group_harmonics


def detect(result):
    detections = CarrierDetector().detect(result)
    return detections, group_harmonics(detections)


def test_fig13_i7_ldl2_ldl1(benchmark, output_dir, i7_ldl2_result):
    detections, sets = benchmark.pedantic(
        lambda: detect(i7_ldl2_result), rounds=1, iterations=1
    )
    header = f"{'set_kHz':>9}{'order':>7}{'freq_kHz':>10}{'dBm':>9}{'depth':>7}"
    rows = [
        f"{s.fundamental / 1e3:>9.1f}{order:>7}{c.frequency / 1e3:>10.1f}"
        f"{c.magnitude_dbm:>9.1f}{c.modulation_depth:>7.2f}"
        for s in sets
        for order, c in s.members
    ]
    write_series(output_dir, "fig13_i7_ldl2_ldl1", header, rows)

    # Shape: exactly one set, at the core regulator's 333 kHz.
    assert len(sets) == 1
    assert abs(sets[0].fundamental - 333e3) < 3e3
    # And none of the memory-side signals appear.
    for detection in detections:
        for memory_fc in (225e3, 315e3, 512e3, 1024e3):
            assert abs(detection.frequency - memory_fc) > 3e3
