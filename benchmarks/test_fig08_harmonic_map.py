"""Figure 8: simplified spectrum map of the LDL2/LDL1 harmonics.

The paper draws, for the Core i7 under on-chip alternation, the detected
carrier harmonics (thick lines) and the positions of their side-band falt
harmonics (thin lines, fc ± k*falt). We regenerate that map from the
pipeline's own detections.
"""


from conftest import write_series
from repro.core import CarrierDetector, group_harmonics


def build_map(result):
    detections = CarrierDetector().detect(result)
    sets = group_harmonics(detections)
    falt = result.falts[0]
    rows = []
    for harmonic_set in sets:
        for order, carrier in harmonic_set.members:
            rows.append(("carrier", carrier.frequency, order, 0))
            for k in (1, -1, 3, -3, 5, -5):
                rows.append(("sideband", carrier.frequency + k * falt, order, k))
    rows.sort(key=lambda r: r[1])
    return detections, sets, rows


def test_fig08_harmonic_map(benchmark, output_dir, i7_ldl2_result):
    detections, sets, rows = benchmark.pedantic(
        lambda: build_map(i7_ldl2_result), rounds=1, iterations=1
    )
    header = f"{'kind':<10}{'freq_kHz':>10}{'carrier_order':>14}{'falt_harmonic':>14}"
    write_series(
        output_dir,
        "fig08_harmonic_map",
        header,
        [f"{kind:<10}{f / 1e3:>10.1f}{order:>14}{k:>14}" for kind, f, order, k in rows],
    )

    # Shape: the map is built around the core regulator's comb (Figure 8
    # colors everything by the 333 kHz regulator's harmonics).
    assert len(sets) >= 1
    core_set = min(sets, key=lambda s: abs(s.fundamental - 333e3))
    assert abs(core_set.fundamental - 333e3) < 3e3
    # side-band entries interleave between carriers, the paper's point about
    # why manual interpretation is hard
    kinds = [kind for kind, *_ in rows]
    assert "sideband" in kinds and "carrier" in kinds
