"""Figure 14: the DRAM clock spectrum at 0% vs 100% memory activity.

The spread-spectrum pedestal spans 332-333 MHz with edge horns; the 100%
(LDM/LDM) trace sits ~9-10 dB above the 0% (LDL1/LDL1) one.
"""

import numpy as np

from conftest import write_series
from repro import MeasurementCampaign
from repro.uarch.isa import MicroOp, activity_levels


def capture_both(machine, config, rng_seed=1):
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(rng_seed))
    idle = campaign.capture_steady(activity_levels(MicroOp.LDL1), label="LDL1/LDL1 (0%)")
    busy = campaign.capture_steady(activity_levels(MicroOp.LDM), label="LDM/LDM (100%)")
    return idle, busy


def test_fig14_dram_clock_duty(benchmark, output_dir, i7_hf, dram_clock_config):
    idle, busy = benchmark.pedantic(
        lambda: capture_both(i7_hf, dram_clock_config), rounds=1, iterations=1
    )
    grid = idle.grid
    rows = []
    for i in range(0, grid.n_bins, 20):
        rows.append(
            f"{grid.frequency_at(i) / 1e6:>10.3f} {idle.dbm[i]:>9.1f} {busy.dbm[i]:>9.1f}"
        )
    write_series(
        output_dir, "fig14_dram_clock_duty", f"{'freq_MHz':>10} {'idle_dBm':>9} {'busy_dBm':>9}", rows
    )

    def band_dbm(trace, f, halfwidth=30e3):
        lo, hi = grid.slice_indices(f - halfwidth, f + halfwidth)
        return 10 * np.log10(np.mean(trace.power_mw[lo:hi]))

    # Shape 1: the pedestal occupies 332-333 MHz, above the out-of-band floor.
    assert band_dbm(busy, 332.5e6) > band_dbm(busy, 330e6) + 5.0
    assert band_dbm(busy, 334.5e6) < band_dbm(busy, 332.5e6) - 5.0

    # Shape 2: edge horns exceed the mid-band level.
    assert band_dbm(busy, 332.02e6, 15e3) > band_dbm(busy, 332.5e6) + 3.0
    assert band_dbm(busy, 332.98e6, 15e3) > band_dbm(busy, 332.5e6) + 3.0

    # Shape 3: 100% activity lifts the clock emission by roughly 9-10 dB
    # over 0%. Measured at the horn, where the clock dominates the floor
    # (mid-pedestal the idle trace is floor-limited, compressing the delta).
    delta = band_dbm(busy, 332.98e6, 15e3) - band_dbm(idle, 332.98e6, 15e3)
    assert 6.0 < delta < 13.0
    # mid-pedestal the busy trace still clearly exceeds the idle one
    assert band_dbm(busy, 332.5e6) > band_dbm(idle, 332.5e6) + 2.0
