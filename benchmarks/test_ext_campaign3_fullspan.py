"""Extension bench: the paper's full campaign 3 (0-1200 MHz, 2.4 M bins).

The complete Figure 10 third row, uncut: five falts at 1.8-2.2 MHz over
2,400,000 bins against the full metropolitan environment. Out of the
entire span, FASE reports exactly two carriers — the edges of the
spread-spectrum DRAM clock — and rejects everything else (the swept CPU
clock, crystal spurs, stations, and the low-frequency emitters whose
regulator feedback cannot follow a 1.8 MHz alternation).
"""

import numpy as np

from conftest import write_series
from repro import MeasurementCampaign, MicroOp
from repro.core import CarrierDetector, campaign_high_band
from repro.system import build_environment, corei7_desktop


def test_ext_campaign3_full_span(benchmark, output_dir):
    machine = corei7_desktop(
        environment=build_environment(1.2e9, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )

    def run():
        campaign = MeasurementCampaign(
            machine, campaign_high_band(), rng=np.random.default_rng(1)
        )
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        return result, CarrierDetector(min_separation_hz=150e3).detect(result)

    result, detections = benchmark.pedantic(run, rounds=1, iterations=1)
    header = "campaign 3 (0-1200 MHz, 2.4M bins): detected carriers"
    write_series(
        output_dir,
        "ext_campaign3_fullspan",
        header,
        [d.describe() for d in detections] or ["(none)"],
    )

    assert result.grid.n_bins == 2_400_000
    assert len(detections) == 2
    low, high = sorted(d.frequency for d in detections)
    assert abs(low - 332e6) < 150e3
    assert abs(high - 333e6) < 150e3
