"""Adaptive vs exhaustive survey: captures spent and wall-clock.

Runs the Figure 11 fixture — the i7's 0-4 MHz LDM/LDL1 sweep split into
32 bands — twice through ``run_survey``: once exhaustively and once
under an :class:`~repro.survey.AdaptivePlanner` with a 64-capture
budget. Emits a machine-readable ``BENCH_planner.json`` and asserts:

* **equivalence** — the adaptive run detects the identical carrier set
  (same frequencies, same source grouping) as the exhaustive run;
* **accounting** — every capture is reconciled
  (used + saved == exhaustive), with the pre-scan's own cost on record;
* **saving** — the adaptive run spends at most half the exhaustive
  captures (a >= 2x capture-reduction floor).
"""

import json
import time

from repro import FaseConfig, MicroOp
from repro.survey import AdaptivePlanner, run_survey

MACHINES = ("corei7_desktop",)
PAIRS = ((MicroOp.LDM, MicroOp.LDL1),)
CONFIG = FaseConfig(
    span_low=0.0,
    span_high=4e6,
    fres=50.0,
    falt1=43.3e3,
    f_delta=0.5e3,
    name="planner benchmark",
)
BANDS = 32
SEED = 5
BUDGET = 64


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _carriers(report):
    return {
        name: sorted(
            round(d.frequency, 3)
            for activity in fase.activities.items()
            for d in activity[1].detections
        )
        for name, fase in report.machines.items()
    }


def _sources(report):
    return {
        name: [source.describe() for source in fase.sources]
        for name, fase in report.machines.items()
    }


def test_adaptive_planner_capture_reduction(output_dir):
    exhaustive_s, exhaustive = _timed(
        lambda: run_survey(
            machines=MACHINES, pairs=PAIRS, config=CONFIG, bands=BANDS, seed=SEED
        )
    )
    adaptive_s, adaptive = _timed(
        lambda: run_survey(
            machines=MACHINES,
            pairs=PAIRS,
            config=CONFIG,
            bands=BANDS,
            seed=SEED,
            planner=AdaptivePlanner(capture_budget=BUDGET),
        )
    )

    # Equivalence: budgeting changes cost, never the carrier set.
    assert _carriers(adaptive) == _carriers(exhaustive)
    assert _sources(adaptive) == _sources(exhaustive)

    acc = adaptive.planning
    assert acc.captures_used + acc.captures_saved == acc.exhaustive_captures
    reduction = acc.exhaustive_captures / acc.captures_used

    record = {
        "campaign": CONFIG.describe(),
        "machines": list(MACHINES),
        "bands": BANDS,
        "seed": SEED,
        "capture_budget": BUDGET,
        "exhaustive_captures": acc.exhaustive_captures,
        "captures_used": acc.captures_used,
        "captures_saved": acc.captures_saved,
        "prescan_captures": acc.prescan_captures,
        "prescan_cost_equivalent": acc.prescan_cost_equivalent,
        "capture_reduction": reduction,
        "n_completed": acc.n_completed,
        "n_early_stopped": acc.n_early_stopped,
        "n_budget_exhausted": acc.n_budget_exhausted,
        "exhaustive_s": exhaustive_s,
        "adaptive_s": adaptive_s,
        "carriers_identical": True,
        "sources_identical": True,
    }
    (output_dir / "BENCH_planner.json").write_text(json.dumps(record, indent=2) + "\n")

    # The saving the ISSUE demands: at least a 2x capture reduction on
    # the Figure 11 fixture, with identical results.
    assert reduction >= 2.0
