"""Figure 6: the X/Y alternation micro-benchmark (calibration behaviour).

Figure 6 is pseudo-code, so the regenerable artifact is the calibration
table behind Section 2.2: for each target falt, the loop counts chosen, the
achieved alternation frequency, and the duty cycle ("we adjust the
inst_x_count and inst_y_count variables so that activity X and activity Y
are each done for half of the alternation period").
"""

from conftest import write_series
from repro.uarch.isa import MicroOp
from repro.uarch.microbench import AlternationMicrobenchmark

TARGETS = [43.3e3, 43.8e3, 44.3e3, 44.8e3, 45.3e3, 180e3, 1800e3]


def calibrate_all():
    rows = []
    for falt in TARGETS:
        bench = AlternationMicrobenchmark.calibrated(MicroOp.LDM, MicroOp.LDL1, falt)
        rows.append((falt, bench))
    return rows


def test_fig06_calibration_table(benchmark, output_dir):
    calibrated = benchmark.pedantic(calibrate_all, rounds=1, iterations=1)
    header = (
        f"{'target_kHz':>11}{'inst_x':>8}{'inst_y':>8}"
        f"{'achieved_kHz':>14}{'duty':>7}{'jitter':>8}"
    )
    rows = []
    for falt, bench in calibrated:
        rows.append(
            f"{falt / 1e3:>11.1f}{bench.inst_x_count:>8}{bench.inst_y_count:>8}"
            f"{bench.achieved_falt() / 1e3:>14.2f}{bench.achieved_duty_cycle():>7.3f}"
            f"{bench.period_jitter_fraction():>8.4f}"
        )
    write_series(output_dir, "fig06_microbenchmark", header, rows)

    for falt, bench in calibrated:
        assert abs(bench.achieved_falt() - falt) / falt < 0.05
        # at the paper's low-band falts the duty calibrates to ~50%
        if falt < 100e3:
            assert abs(bench.achieved_duty_cycle() - 0.5) < 0.02
