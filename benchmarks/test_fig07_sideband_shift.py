"""Figure 7: a carrier and its side-bands for five alternation frequencies.

The paper shows the refresh-comb carrier at 1.0235 MHz (our model: the
8th refresh harmonic at 1.024 MHz) with LDM/LDL1 side-bands whose peaks
move by f_delta as falt steps by f_delta, plus an LDL1/LDL1 control whose
spectrum shows no side-bands at all.
"""

import numpy as np

from conftest import write_series

FC = 1024e3


def sideband_peaks(result, side):
    """Per-measurement side-band peak frequency near fc + side*falt."""
    grid = result.grid
    peaks = []
    for measurement in result.measurements:
        target = FC + side * measurement.falt
        lo, hi = grid.slice_indices(target - 2e3, target + 2e3)
        idx = lo + int(np.argmax(measurement.trace.power_mw[lo:hi]))
        peaks.append((measurement.falt, grid.frequency_at(idx),
                      float(measurement.trace.dbm[idx])))
    return peaks


def test_fig07_sideband_shift(benchmark, output_dir, i7_ldm_result, i7_null_result):
    right = benchmark.pedantic(lambda: sideband_peaks(i7_ldm_result, +1), rounds=1, iterations=1)
    left = sideband_peaks(i7_ldm_result, -1)

    header = f"{'falt_kHz':>9}{'left_sb_kHz':>13}{'right_sb_kHz':>14}{'right_dBm':>11}"
    rows = []
    for (falt, lf, _), (_, rf, rdbm) in zip(left, right):
        rows.append(f"{falt / 1e3:>9.2f}{lf / 1e3:>13.2f}{rf / 1e3:>14.2f}{rdbm:>11.1f}")
    write_series(output_dir, "fig07_sideband_shift", header, rows)

    # Shape 1: the clean (left) side-band peak moves DOWN by ~f_delta per
    # step, tracking fc - falt exactly.
    left_freqs = [f for _, f, _ in left]
    left_steps = np.diff(left_freqs)
    assert np.all(left_steps < -0.2e3) and np.all(left_steps > -0.9e3)
    for falt, f, _ in left:
        assert abs(f - (FC - falt)) < 300.0

    # Shape 2: the right side-band is partially obscured — in this
    # environment an AM station sits at 1070 kHz, capturing the window for
    # the higher falts (the paper's Figure 12 shows the same effect on a
    # left side-band). The unobscured points still track fc + falt; the
    # obscured ones park at the station's fixed frequency.
    tracking = [(falt, f) for falt, f, _ in right if abs(f - (FC + falt)) < 400.0]
    parked = [(falt, f, dbm) for falt, f, dbm in right if abs(f - (FC + falt)) >= 400.0]
    assert len(tracking) >= 1
    strong_parked = [(falt, f) for falt, f, dbm in parked if dbm > -120.0]
    for _, f in strong_parked:
        assert abs(f - strong_parked[0][1]) < 400.0  # stuck on the same interferer

    # Shape 3 (the LDL1/LDL1 control trace of Figure 7): no side-band at
    # fc - falt when the alternation has no memory contrast (the clean left
    # side is used for the comparison; the right side holds a station).
    # Band power summed over all five falts beats per-bin noise.
    def left_band_power(result):
        total = 0.0
        grid = result.grid
        for measurement in result.measurements:
            target = FC - measurement.falt
            lo, hi = grid.slice_indices(target - 150.0, target + 150.0)
            total += float(measurement.trace.power_mw[lo:hi].sum())
        return total

    ldm_power = left_band_power(i7_ldm_result)
    null_power = left_band_power(i7_null_result)
    assert 10 * np.log10(ldm_power / null_power) > 3.0
